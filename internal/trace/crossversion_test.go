package trace

import (
	"bytes"
	"strings"
	"testing"

	"heapmd/internal/event"
)

// traceVariant writes one run's events in a given format version.
type traceVariant struct {
	name    string
	version uint32
	write   func(t *testing.T, evs []event.Event, sym *event.Symtab) []byte
}

func crossVersionVariants() []traceVariant {
	return []traceVariant{
		{"v1", VersionV1, func(t *testing.T, evs []event.Event, sym *event.Symtab) []byte {
			var buf bytes.Buffer
			w, err := NewWriterV1(&buf)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range evs {
				w.Emit(e)
			}
			if err := w.Close(sym); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}},
		{"v2", Version, func(t *testing.T, evs []event.Event, sym *event.Symtab) []byte {
			return writeV2asT(t, evs, sym)
		}},
		{"v3", VersionV3, func(t *testing.T, evs []event.Event, sym *event.Symtab) []byte {
			return writeV3(t, evs, sym, 0, false)
		}},
		{"v3-flate", VersionV3, func(t *testing.T, evs []event.Event, sym *event.Symtab) []byte {
			return writeV3(t, evs, sym, 0, true)
		}},
	}
}

// writeV2asT adapts writeV2 (which takes *testing.T) without the
// flushEvery knob.
func writeV2asT(t *testing.T, evs []event.Event, sym *event.Symtab) []byte {
	return writeV2(t, evs, sym, 0)
}

// TestCrossVersionEquivalence is the format-compatibility oracle: the
// same run written as v1, v2, v3 and compressed v3 must replay to
// byte-identical event sequences and identical symbol tables, with
// correct per-format version reporting in Stats.
func TestCrossVersionEquivalence(t *testing.T) {
	sym := event.NewSymtab()
	fMain := sym.Intern("main")
	fLoop := sym.Intern("parse_loop")
	evs := v3TestEvents(3*DefaultBatchRecords + 41)

	type result struct {
		name   string
		events []event.Event
		syms   []string
		stats  Stats
	}
	var results []result
	for _, v := range crossVersionVariants() {
		data := v.write(t, evs, sym)
		var got []event.Event
		var st Stats
		rsym, n, err := ReplayWith(bytes.NewReader(data), collectSink(&got), ReadOptions{Stats: &st})
		if err != nil {
			t.Fatalf("%s: replay failed: %v", v.name, err)
		}
		if n != uint64(len(evs)) {
			t.Fatalf("%s: replayed %d events, want %d", v.name, n, len(evs))
		}
		if st.Version != v.version || st.Events != n || st.TotalBytes != uint64(len(data)) {
			t.Errorf("%s: stats = %+v", v.name, st)
		}
		syms := []string{rsym.Name(fMain), rsym.Name(fLoop)}
		results = append(results, result{v.name, got, syms, st})
	}
	base := results[0]
	for _, r := range results[1:] {
		if len(r.events) != len(base.events) {
			t.Fatalf("%s: %d events vs %s's %d", r.name, len(r.events), base.name, len(base.events))
		}
		for i := range r.events {
			if r.events[i] != base.events[i] {
				t.Fatalf("%s: event %d = %+v, %s has %+v", r.name, i, r.events[i], base.name, base.events[i])
			}
		}
		for i, s := range r.syms {
			if s != base.syms[i] {
				t.Fatalf("%s: symbol %d = %q, %s has %q", r.name, i, s, base.name, base.syms[i])
			}
		}
	}
	// The size ordering the format exists for: v3 < v2, and on this
	// clustered workload compressed v3 no larger than raw v3.
	byName := map[string]Stats{}
	for _, r := range results {
		byName[r.name] = r.stats
	}
	if byName["v3"].TotalBytes >= byName["v2"].TotalBytes {
		t.Errorf("v3 (%d bytes) not smaller than v2 (%d bytes)",
			byName["v3"].TotalBytes, byName["v2"].TotalBytes)
	}
	if byName["v3-flate"].TotalBytes > byName["v3"].TotalBytes {
		t.Errorf("v3-flate (%d bytes) larger than v3 (%d bytes)",
			byName["v3-flate"].TotalBytes, byName["v3"].TotalBytes)
	}
}

// TestCrossVersionSalvage runs the truncation drill over every format
// that supports salvage: cutting a framed trace mid-frame loses at
// most one frame of events and never corrupts the prefix, regardless
// of version; v1 recovers whole records.
func TestCrossVersionSalvage(t *testing.T) {
	sym := event.NewSymtab()
	sym.Intern("fn")
	evs := v3TestEvents(2*DefaultBatchRecords + 100)
	for _, v := range crossVersionVariants() {
		t.Run(v.name, func(t *testing.T) {
			data := v.write(t, evs, sym)
			for _, frac := range []int{4, 2, 3} {
				cut := len(data) * (frac - 1) / frac
				var got []event.Event
				_, info, err := Salvage(bytes.NewReader(data[:cut]), collectSink(&got))
				if err != nil {
					t.Fatalf("cut=%d: %v", cut, err)
				}
				if !info.Truncated {
					t.Errorf("cut=%d: truncation not flagged", cut)
				}
				if uint64(len(got)) != info.EventsRecovered {
					t.Errorf("cut=%d: delivered %d events, info says %d", cut, len(got), info.EventsRecovered)
				}
				for i := range got {
					if got[i] != evs[i] {
						t.Fatalf("cut=%d: salvaged event %d corrupted", cut, i)
					}
				}
			}
		})
	}
}

// TestV2ErrorStringsPinned pins the v2 corruption error strings as
// public contract: v3's introduction must not reword what tools
// already match on (ISSUE: "same error strings, same SalvageInfo
// offsets for v2").
func TestV2ErrorStringsPinned(t *testing.T) {
	evs := v3TestEvents(DefaultBatchRecords)
	clean := writeV2(t, evs, nil, 0)

	strict := func(data []byte) error {
		_, _, err := Replay(bytes.NewReader(data), event.SinkFunc(func(event.Event) {}))
		return err
	}

	// Truncated mid-frame: missing end frame.
	if err := strict(clean[:len(clean)/2]); err == nil || !strings.Contains(err.Error(), "truncated frame payload") {
		t.Errorf("truncation error = %v", err)
	}
	// CRC mismatch on a payload byte.
	mut := bytes.Clone(clean)
	mut[20] ^= 0xff
	if err := strict(mut); err == nil || !strings.Contains(err.Error(), "frame checksum mismatch") {
		t.Errorf("crc error = %v", err)
	}
	// Unknown frame kind.
	mut = bytes.Clone(clean)
	mut[8] = 0x77
	if err := strict(mut); err == nil || !strings.Contains(err.Error(), "unknown frame kind") {
		t.Errorf("kind error = %v", err)
	}
	// Unsupported header version.
	mut = bytes.Clone(clean)
	mut[4] = 99
	if err := strict(mut); err == nil || !strings.Contains(err.Error(), "unsupported version") {
		t.Errorf("version error = %v", err)
	}
}
