package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"heapmd/internal/event"
)

// fuzzSeeds builds the seed corpus: clean and damaged traces in both
// format versions, plus outright garbage. The fuzzer mutates from
// here into the interesting corners (flipped CRCs, ragged frames,
// lying length fields, truncated trailers).
func fuzzSeeds(f *testing.F) {
	f.Helper()
	sym := event.NewSymtab()
	sym.Intern("fuzz")
	evs := make([]event.Event, 40)
	for i := range evs {
		evs[i] = event.Event{
			Type: event.Type(i % 9), // includes unknown types
			Fn:   event.FnID(i), Addr: uint64(i * 64), Value: uint64(i), Size: 8,
		}
	}
	// Clean v2 with several frames.
	var v2 bytes.Buffer
	w, err := NewWriter(&v2)
	if err != nil {
		f.Fatal(err)
	}
	w.SetSymtab(sym)
	for i, e := range evs {
		w.Emit(e)
		if i%7 == 6 {
			w.Flush()
		}
	}
	if err := w.Close(sym); err != nil {
		f.Fatal(err)
	}
	// Clean v1.
	var v1 bytes.Buffer
	w1, err := NewWriterV1(&v1)
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range evs {
		w1.Emit(e)
	}
	if err := w1.Close(sym); err != nil {
		f.Fatal(err)
	}
	// Clean v3, raw and compressed, several frames each.
	var v3, v3z bytes.Buffer
	for _, dst := range []struct {
		buf      *bytes.Buffer
		compress bool
	}{{&v3, false}, {&v3z, true}} {
		w3, err := NewWriterWith(dst.buf, WriterOptions{Version: VersionV3, Compress: dst.compress})
		if err != nil {
			f.Fatal(err)
		}
		w3.SetSymtab(sym)
		for i, e := range evs {
			w3.Emit(e)
			if i%7 == 6 {
				w3.Flush()
			}
		}
		if err := w3.Close(sym); err != nil {
			f.Fatal(err)
		}
	}
	// Many tiny frames: more frames than the decode pipeline's buffer
	// window at the fuzzed worker count, so the resequencer's ring
	// wraps and out-of-order completions actually occur.
	var v3many bytes.Buffer
	wm, err := NewWriterWith(&v3many, WriterOptions{Version: VersionV3})
	if err != nil {
		f.Fatal(err)
	}
	wm.SetSymtab(sym)
	for _, e := range evs {
		wm.Emit(e)
		wm.Flush()
	}
	if err := wm.Close(sym); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add(v1.Bytes())
	f.Add(v3many.Bytes())
	f.Add(v3many.Bytes()[:v3many.Len()-13])
	f.Add(v3.Bytes())
	f.Add(v3z.Bytes())
	f.Add(v3.Bytes()[:v3.Len()*2/3])          // truncated v3
	f.Add(v3z.Bytes()[:v3z.Len()/2])          // truncated compressed v3
	f.Add(append([]byte("HMDT"), 3, 0, 0, 0)) // bare v3 header
	f.Add(v2.Bytes()[:v2.Len()/2])            // truncated v2
	f.Add(v1.Bytes()[:v1.Len()-25])           // v1 missing trailer
	f.Add(v1.Bytes()[:11])                    // mid-record v1
	f.Add([]byte("HMDT"))                     // header alone, short
	f.Add(append([]byte("HMDT"), 2, 0, 0, 0)) // bare v2 header
	f.Add(append([]byte("HMDT"), 1, 0, 0, 0)) // bare v1 header
	f.Add([]byte("not a trace at all, definitely longer than a header"))
	f.Add([]byte{})
}

// acceptable reports whether a replay error is one of the declared
// failure modes: corruption or an unsupported version. Anything else
// (a panic is caught by the fuzzer itself) is a bug.
func acceptable(err error) bool {
	return errors.Is(err, ErrCorrupt) || strings.Contains(err.Error(), "unsupported version")
}

// FuzzReplay feeds arbitrary bytes to strict replay: it must never
// panic and must either succeed or fail with ErrCorrupt/unsupported-
// version.
func FuzzReplay(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var c event.Counter
		_, n, err := Replay(bytes.NewReader(data), &c)
		if err != nil {
			if !acceptable(err) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if c.Total != n {
			t.Fatalf("replay count %d != delivered events %d", n, c.Total)
		}
	})
}

// FuzzReplayParallel is the pipeline's differential fuzzer: for
// arbitrary bytes, the parallel decoder (scanner + 3 workers +
// resequencer) must match the serial decoder outcome-for-outcome, in
// both strict and salvage modes.
func FuzzReplayParallel(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, salvage := range []bool{false, true} {
			serial := runReplay(t, data, salvage, 0)
			parallel := runReplay(t, data, salvage, 3)
			if d := diffOutcome(serial, parallel); d != "" {
				t.Fatalf("salvage=%v: parallel decode diverges from serial: %s", salvage, d)
			}
		}
	})
}

// FuzzSalvage feeds arbitrary bytes to salvage: it must never panic,
// and must either recover a (possibly empty) prefix with a coherent
// SalvageInfo or fail with ErrCorrupt/unsupported-version. Strict
// success must imply lossless salvage.
func FuzzSalvage(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var c event.Counter
		sym, info, err := Salvage(bytes.NewReader(data), &c)
		if err != nil {
			if !acceptable(err) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if sym == nil || info == nil {
			t.Fatal("salvage succeeded with nil symtab or info")
		}
		if info.EventsRecovered != c.Total {
			t.Fatalf("info says %d events, sink saw %d", info.EventsRecovered, c.Total)
		}
		if info.BytesDropped > uint64(len(data)) {
			t.Fatalf("dropped %d bytes of a %d-byte trace", info.BytesDropped, len(data))
		}
		// Cross-check strict mode: if strict accepts, salvage must
		// have reported a clean, equally-sized replay.
		var c2 event.Counter
		if _, n2, err2 := Replay(bytes.NewReader(data), &c2); err2 == nil {
			if info.Salvaged() {
				t.Fatalf("strict replay clean but salvage reported loss: %v", info)
			}
			if n2 != info.EventsRecovered {
				t.Fatalf("strict replayed %d, salvage %d", n2, info.EventsRecovered)
			}
		}
	})
}
