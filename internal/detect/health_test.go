package detect

import (
	"strings"
	"testing"

	"heapmd/internal/event"
	"heapmd/internal/health"
	"heapmd/internal/logger"
)

// healthyReport returns an in-band run over testSuite with the given
// health counters attached.
func healthyReport(c health.Counters) *logger.Report {
	roots := make([]float64, 40)
	leaves := make([]float64, 40)
	for i := range roots {
		roots[i] = 15
		leaves[i] = float64((i * 37) % 100) // keeps Leaves unstable
	}
	rep := mkReport(roots, leaves)
	rep.Health = c
	return rep
}

func TestInstrumentationAnomalyFromReport(t *testing.T) {
	rep := healthyReport(health.Counters{WildStores: 5})
	findings := CheckReport(testModel(), rep, Options{})
	var got *Finding
	for _, f := range findings {
		if f.Kind == InstrumentationAnomaly {
			if got != nil {
				t.Fatal("more than one instrumentation finding for one counter")
			}
			got = f
		}
	}
	if got == nil {
		t.Fatal("wild stores in Report.Health produced no InstrumentationAnomaly")
	}
	if got.Metric != "wild-stores" || got.Value != 5 || got.Direction != AboveMax {
		t.Errorf("finding = %+v", got)
	}
	if got.Range.Max != 0 {
		t.Errorf("default threshold for wild stores = %v, want 0", got.Range.Max)
	}
}

func TestInstrumentationAnomalyDescribe(t *testing.T) {
	rep := healthyReport(health.Counters{WildStores: 5})
	findings := CheckReport(testModel(), rep, Options{})
	sym := event.NewSymtab()
	var desc string
	for _, f := range findings {
		if f.Kind == InstrumentationAnomaly {
			desc = f.Describe(sym)
		}
	}
	for _, want := range []string{"instrumentation-anomaly", "counter=wild-stores", "count=5", "threshold=0"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe() = %q, missing %q", desc, want)
		}
	}
}

func TestInstrumentationTolerantThresholds(t *testing.T) {
	rep := healthyReport(health.Counters{WildStores: 5, DoubleFrees: 1})
	tolerant := health.DefaultThresholds()
	tolerant.MaxWildStores = 10
	tolerant.MaxDoubleFrees = 1
	findings := CheckReport(testModel(), rep, Options{Health: &tolerant})
	for _, f := range findings {
		if f.Kind == InstrumentationAnomaly {
			t.Fatalf("counters within custom thresholds still reported: %+v", f)
		}
	}
}

func TestInstrumentationMultipleCounters(t *testing.T) {
	rep := healthyReport(health.Counters{DoubleFrees: 2, WildFrees: 1, BadReallocs: 3})
	findings := CheckReport(testModel(), rep, Options{})
	var metrics []string
	for _, f := range findings {
		if f.Kind == InstrumentationAnomaly {
			metrics = append(metrics, f.Metric)
		}
	}
	want := []string{"double-frees", "wild-frees", "bad-reallocs"}
	if len(metrics) != len(want) {
		t.Fatalf("instrumentation findings = %v, want %v", metrics, want)
	}
	for i := range want {
		if metrics[i] != want[i] {
			t.Errorf("finding %d metric = %s, want %s (stable counter order)", i, metrics[i], want[i])
		}
	}
}

func TestCleanHealthNoFindings(t *testing.T) {
	rep := healthyReport(health.Counters{})
	for _, f := range CheckReport(testModel(), rep, Options{}) {
		if f.Kind == InstrumentationAnomaly {
			t.Fatalf("clean health produced a finding: %+v", f)
		}
	}
}
