// Package detect implements HeapMD's anomaly detector / execution
// checker (paper Section 2.2, lower half of Figure 2).
//
// The detector compares metric samples from a monitored execution
// against the calibrated ranges in the model:
//
//   - A *range violation* — a globally stable metric leaving its
//     [min, max] band — is reported as a bug. Crucially, instability
//     alone is not: a metric that was stable in training may fluctuate
//     during checking so long as it stays in band.
//   - When a stable metric *approaches* its calibrated maximum with a
//     positive slope (or its minimum with a negative slope), the
//     detector arms call-stack logging into a circular buffer, and
//     keeps logging briefly after a crossing, so a bug report carries
//     call-stack context from before, during and after the violation.
//   - At the end of a run the detector performs two run-level checks:
//     *extreme-value stability* (a stable metric pinned at its
//     calibrated extreme for the whole run — the paper's "poorly
//     disguised" bugs, e.g. the oct-tree that became an oct-DAG) and
//     *unexpected stability* (a training-time-unstable metric holding
//     stable — the paper's "pathological" bugs).
package detect

import (
	"fmt"
	"strings"

	"heapmd/internal/callstack"
	"heapmd/internal/event"
	"heapmd/internal/health"
	"heapmd/internal/logger"
	"heapmd/internal/metrics"
	"heapmd/internal/model"
	"heapmd/internal/stats"
)

// Kind classifies a finding.
type Kind int

const (
	// RangeViolation is the paper's *heap anomaly* bug signal: a
	// stable metric outside its calibrated range.
	RangeViolation Kind = iota
	// ExtremeStability flags a stable metric pinned at its
	// calibrated extreme for an entire run ("poorly disguised").
	ExtremeStability
	// UnexpectedStability flags a training-time-unstable metric that
	// held a stable value during checking ("pathological").
	UnexpectedStability
	// InstrumentationAnomaly flags an instrumentation-health counter
	// above its threshold: the logger observed events it could not
	// apply to the heap image (double frees, wild stores, ...).
	// These are direct evidence of the corruption bugs in the
	// paper's taxonomy, reported even when every degree metric
	// stayed in band.
	InstrumentationAnomaly
)

func (k Kind) String() string {
	switch k {
	case RangeViolation:
		return "range-violation"
	case ExtremeStability:
		return "extreme-stability"
	case UnexpectedStability:
		return "unexpected-stability"
	case InstrumentationAnomaly:
		return "instrumentation-anomaly"
	default:
		return fmt.Sprintf("detect.Kind(%d)", int(k))
	}
}

// Direction indicates which bound a violation crossed.
type Direction int

const (
	AboveMax Direction = iota
	BelowMin
)

func (d Direction) String() string {
	if d == BelowMin {
		return "below-min"
	}
	return "above-max"
}

// Finding is one detector report.
type Finding struct {
	Kind   Kind
	Metric string
	// MetricClass records the training-time class of the violated
	// metric: "globally-stable" for the paper's detectors, or
	// "locally-stable" for the future-work extension (envelope
	// ranges across program phases; weaker evidence).
	MetricClass string
	Direction   Direction
	// Tick is the metric computation point of the first violation.
	Tick uint64
	// Value is the offending metric value.
	Value float64
	// Range is the calibrated range that was violated.
	Range stats.Range
	// Recurrences counts further out-of-range samples for the same
	// metric and direction after the first report.
	Recurrences int
	// Captures holds the circular-buffer call stacks around the
	// violation (online mode only), oldest first.
	Captures []callstack.Capture
}

// Describe renders the finding with symbolized stacks.
func (f *Finding) Describe(sym *event.Symtab) string {
	var b strings.Builder
	if f.Kind == InstrumentationAnomaly {
		fmt.Fprintf(&b, "[%s] counter=%s count=%.0f threshold=%.0f",
			f.Kind, f.Metric, f.Value, f.Range.Max)
		return b.String()
	}
	fmt.Fprintf(&b, "[%s] metric=%s %s at tick %d: value=%.2f calibrated=[%.2f, %.2f]",
		f.Kind, f.Metric, f.Direction, f.Tick, f.Value, f.Range.Min, f.Range.Max)
	if f.Recurrences > 0 {
		fmt.Fprintf(&b, " (+%d recurrences)", f.Recurrences)
	}
	if sym != nil && len(f.Captures) > 0 {
		b.WriteString("\n  call-stack context:")
		for _, c := range f.Captures {
			fmt.Fprintf(&b, "\n    tick %d value %.2f: %s", c.Tick, c.Value, strings.Join(sym.Names(c.Stack), " > "))
		}
	}
	return b.String()
}

// Options configures a Detector.
type Options struct {
	// ApproachFrac is the fraction of the calibrated range width
	// within which a metric counts as "approaching" an extreme,
	// arming call-stack logging. Default 0.10.
	ApproachFrac float64
	// RingCapacity is the circular call-stack buffer size per
	// metric. Default 16.
	RingCapacity int
	// PostSamples is how many samples after a crossing the detector
	// keeps logging stacks before finalizing the report. Default 3.
	PostSamples int
	// SkipStart ignores the first SkipStart samples of the run —
	// the startup window the model constructor also discards. The
	// paper configures this count in the settings file (Section
	// 2.1); metrics "change rapidly during program startup", and a
	// model calibrated on trimmed series would otherwise flag every
	// startup transient. Offline checking (CheckReport) derives it
	// from the model's TrimFrac instead.
	SkipStart int
	// Health bounds the instrumentation-health counters; counts
	// above a bound become InstrumentationAnomaly findings. Nil
	// means health.DefaultThresholds().
	Health *health.Thresholds
}

func (o Options) withDefaults() Options {
	if o.ApproachFrac == 0 {
		o.ApproachFrac = 0.10
	}
	if o.RingCapacity == 0 {
		o.RingCapacity = 16
	}
	if o.PostSamples == 0 {
		o.PostSamples = 3
	}
	return o
}

// metricState is the detector's per-stable-metric state machine.
type metricState struct {
	id      metrics.ID
	idx     int    // index in the suite
	class   string // training-time classification of the metric
	rng     stats.Range
	prev    float64
	hasPrev bool
	ring    *callstack.Ring
	// open is the finding currently collecting post-crossing
	// context, if any.
	open     *Finding
	postLeft int
	reported map[Direction]*Finding // first finding per direction
	values   []float64              // full value series for run-level checks
}

// Detector is the online execution checker. It implements
// logger.SampleObserver: attach it to a Logger with Observe and it
// will see every metric computation point.
type Detector struct {
	opts   Options
	mdl    *model.Model
	suite  metrics.Suite
	states []*metricState
	// unstableIdx tracks metrics classified unstable during
	// training, for the pathological check.
	unstableIdx map[int]metrics.ID
	findings    []*Finding
	finished    bool
	seen        int // samples observed, including skipped ones
}

// New builds a detector for the given model against executions logged
// with the given metric suite. Stable metrics absent from the suite
// are ignored.
func New(mdl *model.Model, suite metrics.Suite, opts Options) *Detector {
	d := &Detector{
		opts:        opts.withDefaults(),
		mdl:         mdl,
		suite:       suite,
		unstableIdx: make(map[int]metrics.ID),
	}
	for _, id := range mdl.StableIDs() {
		idx := suite.Index(id)
		if idx < 0 {
			continue
		}
		rng, _ := mdl.RangeOf(id)
		d.states = append(d.states, &metricState{
			id:       id,
			idx:      idx,
			class:    model.GloballyStable.String(),
			rng:      rng,
			ring:     callstack.NewRing(d.opts.RingCapacity),
			reported: make(map[Direction]*Finding),
		})
	}
	// Future-work extension: locally stable metrics carry envelope
	// ranges when the model was built with IncludeLocallyStable.
	for _, id := range mdl.LocallyStableIDs() {
		idx := suite.Index(id)
		if idx < 0 {
			continue
		}
		rng, _ := mdl.LocalRangeOf(id)
		d.states = append(d.states, &metricState{
			id:       id,
			idx:      idx,
			class:    model.LocallyStable.String(),
			rng:      rng,
			ring:     callstack.NewRing(d.opts.RingCapacity),
			reported: make(map[Direction]*Finding),
		})
	}
	for _, id := range suite.IDs() {
		if cls, ok := mdl.ClassOf(id); ok && cls == model.Unstable {
			d.unstableIdx[suite.Index(id)] = id
		}
	}
	return d
}

// Sample implements logger.SampleObserver.
func (d *Detector) Sample(snap metrics.Snapshot, stack *callstack.Tracker) {
	d.seen++
	if d.seen <= d.opts.SkipStart {
		return
	}
	for _, st := range d.states {
		if st.idx >= len(snap.Values) {
			// Snapshot narrower than the suite (v1 report against an
			// extended suite): no evidence for this metric, skip it.
			continue
		}
		v := snap.Values[st.idx]
		st.values = append(st.values, v)
		d.step(st, v, snap.Tick, stack)
	}
}

func (d *Detector) step(st *metricState, v float64, tick uint64, stack *callstack.Tracker) {
	slope := 0.0
	if st.hasPrev {
		slope = v - st.prev
	}
	st.prev, st.hasPrev = v, true

	// Finish an open finding's post-crossing context window.
	if st.open != nil {
		if stack != nil {
			st.ring.Add(callstack.Capture{Tick: tick, Value: v, Stack: stack.Snapshot()})
		}
		st.postLeft--
		if st.postLeft <= 0 {
			st.open.Captures = st.ring.Snapshot()
			st.ring.Clear()
			st.open = nil
		}
	}

	width := st.rng.Width()
	margin := width * d.opts.ApproachFrac
	if width == 0 {
		// Degenerate calibrated range: any excursion is a
		// violation; use a small absolute arming margin.
		margin = 0.5
	}

	switch {
	case v > st.rng.Max:
		d.violate(st, v, tick, AboveMax, stack)
	case v < st.rng.Min:
		d.violate(st, v, tick, BelowMin, stack)
	case st.open == nil:
		// In range: arm or disarm the circular logging.
		nearMax := v >= st.rng.Max-margin && slope > 0
		nearMin := v <= st.rng.Min+margin && slope < 0
		if nearMax || nearMin {
			if stack != nil {
				st.ring.Add(callstack.Capture{Tick: tick, Value: v, Stack: stack.Snapshot()})
			}
		} else if v < st.rng.Max-margin && v > st.rng.Min+margin {
			// Moved away from both extremes: drop stale context.
			st.ring.Clear()
		}
	}
}

func (d *Detector) violate(st *metricState, v float64, tick uint64, dir Direction, stack *callstack.Tracker) {
	if prev := st.reported[dir]; prev != nil {
		// Already reported in this direction; the open-window logging
		// in step (if still active) captures the context, so only
		// count the recurrence here.
		prev.Recurrences++
		return
	}
	f := &Finding{
		Kind:        RangeViolation,
		Metric:      st.id.String(),
		MetricClass: st.class,
		Direction:   dir,
		Tick:        tick,
		Value:       v,
		Range:       st.rng,
	}
	if stack != nil {
		st.ring.Add(callstack.Capture{Tick: tick, Value: v, Stack: stack.Snapshot()})
	}
	st.reported[dir] = f
	st.open = f
	st.postLeft = d.opts.PostSamples
	d.findings = append(d.findings, f)
}

// Finish runs the end-of-run checks and finalizes open findings. It
// must be called once after the monitored execution completes.
func (d *Detector) Finish() {
	if d.finished {
		return
	}
	d.finished = true
	th := d.mdl.Thresholds
	// Close findings still collecting context.
	for _, st := range d.states {
		if st.open != nil {
			st.open.Captures = st.ring.Snapshot()
			st.ring.Clear()
			st.open = nil
		}
	}
	// Poorly disguised: stable metric pinned at a calibrated extreme
	// all run (after trimming).
	for _, st := range d.states {
		trimmed := stats.Trim(st.values, th.TrimFrac)
		if len(trimmed) < th.MinSamples {
			continue
		}
		obs, err := stats.RangeOf(trimmed)
		if err != nil {
			continue
		}
		width := st.rng.Width()
		eps := width * d.opts.ApproachFrac
		if width == 0 {
			eps = 0.5
		}
		// Pinned near min or near max for the entire run, with the
		// run's own spread tiny compared to the calibrated band.
		pinnedMin := obs.Max <= st.rng.Min+eps && obs.Min >= st.rng.Min-eps
		pinnedMax := obs.Min >= st.rng.Max-eps && obs.Max <= st.rng.Max+eps
		if width > 0 && (pinnedMin || pinnedMax) {
			dir := AboveMax
			val := obs.Max
			if pinnedMin {
				dir = BelowMin
				val = obs.Min
			}
			d.findings = append(d.findings, &Finding{
				Kind:        ExtremeStability,
				Metric:      st.id.String(),
				MetricClass: st.class,
				Direction:   dir,
				Tick:        0,
				Value:       val,
				Range:       st.rng,
			})
		}
	}
}

// CheckUnstable evaluates the pathological-bug check against a full
// run report: metrics that were unstable in training but are stable in
// this run are reported as UnexpectedStability findings. It is split
// from Finish because it needs the run's full report.
func (d *Detector) CheckUnstable(rep *logger.Report) {
	th := d.mdl.Thresholds
	for idx, id := range d.unstableIdx {
		series := make([]float64, 0, len(rep.Snapshots))
		for _, s := range rep.Snapshots {
			if idx >= len(s.Values) {
				continue
			}
			series = append(series, s.Values[idx])
		}
		trimmed := stats.Trim(series, th.TrimFrac)
		if len(trimmed) < th.MinSamples {
			continue
		}
		sum, err := stats.Summarize(trimmed)
		if err != nil {
			continue
		}
		if abs(sum.AvgChange) <= th.MaxAvgChange && sum.StdDevChange <= th.MaxStdDev {
			d.findings = append(d.findings, &Finding{
				Kind:   UnexpectedStability,
				Metric: id.String(),
				Value:  sum.Observed.Max,
				Range:  sum.Observed,
			})
		}
	}
}

// CheckHealth evaluates the instrumentation-health counters of a run
// against the detector's thresholds and reports each excess as an
// InstrumentationAnomaly finding. The counters are themselves bug
// evidence: a double free or a spike in wild stores is a corruption
// bug from the paper's taxonomy even when every degree metric stayed
// inside its calibrated range.
func (d *Detector) CheckHealth(c health.Counters) {
	th := d.opts.Health
	if th == nil {
		def := health.DefaultThresholds()
		th = &def
	}
	for _, ex := range th.Exceeded(c) {
		d.findings = append(d.findings, &Finding{
			Kind:      InstrumentationAnomaly,
			Metric:    ex.Counter,
			Direction: AboveMax,
			Value:     float64(ex.Count),
			Range:     stats.Range{Min: 0, Max: float64(ex.Threshold)},
		})
	}
}

// Findings returns all findings reported so far, in detection order.
func (d *Detector) Findings() []*Finding { return d.findings }

// Violations returns only the range-violation findings — the paper's
// bug reports.
func (d *Detector) Violations() []*Finding {
	var out []*Finding
	for _, f := range d.findings {
		if f.Kind == RangeViolation {
			out = append(out, f)
		}
	}
	return out
}

// CheckReport performs offline (post-mortem) checking of a recorded
// metric report against a model: the paper's second usage mode, where
// the execution trace is compared against the model after the fact.
// Startup and shutdown samples are trimmed with the model's TrimFrac,
// symmetric with how the model itself was calibrated. It returns the
// findings; no call stacks are available in this mode.
func CheckReport(mdl *model.Model, rep *logger.Report, opts Options) []*Finding {
	suite, err := suiteOf(rep)
	if err != nil {
		return nil
	}
	d := New(mdl, suite, opts)
	lo, hi := stats.TrimBounds(len(rep.Snapshots), mdl.Thresholds.TrimFrac)
	for _, snap := range rep.Snapshots[lo:hi] {
		d.Sample(snap, nil)
	}
	d.Finish()
	d.CheckUnstable(rep)
	d.CheckHealth(rep.Health)
	return d.Findings()
}

// suiteOf reconstructs the metric suite from a report's metric names.
func suiteOf(rep *logger.Report) (metrics.Suite, error) {
	ids := make([]metrics.ID, 0, len(rep.Suite))
	for _, name := range rep.Suite {
		id, err := metrics.ParseID(name)
		if err != nil {
			return metrics.Suite{}, err
		}
		ids = append(ids, id)
	}
	return metrics.NewSuite(ids...), nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
