package detect

import (
	"strings"
	"testing"

	"heapmd/internal/callstack"
	"heapmd/internal/event"
	"heapmd/internal/logger"
	"heapmd/internal/metrics"
	"heapmd/internal/model"
	"heapmd/internal/stats"
)

var (
	testSuite = metrics.NewSuite(metrics.Roots, metrics.Leaves)
)

// testModel builds a model in which Roots is globally stable in
// [10, 20] and Leaves was classified unstable.
func testModel() *model.Model {
	return &model.Model{
		Program:    "prog",
		Thresholds: model.Defaults(),
		Stable: map[string]stats.Range{
			metrics.Roots.String(): {Min: 10, Max: 20},
		},
		Classes: map[string]string{
			metrics.Roots.String():  model.GloballyStable.String(),
			metrics.Leaves.String(): model.Unstable.String(),
		},
		TrainingInputs: 5,
	}
}

// feed sends a sequence of (roots, leaves) samples to the detector.
func feed(d *Detector, rootVals []float64) {
	for i, v := range rootVals {
		snap := metrics.Snapshot{Tick: uint64(i + 1), Values: []float64{v, 50}}
		d.Sample(snap, nil)
	}
}

func TestNoViolationInBand(t *testing.T) {
	d := New(testModel(), testSuite, Options{})
	feed(d, []float64{12, 15, 18, 11, 19.9, 10.0, 20.0})
	d.Finish()
	if len(d.Violations()) != 0 {
		t.Fatalf("in-band run produced violations: %+v", d.Violations()[0])
	}
}

func TestInstabilityAloneIsNotABug(t *testing.T) {
	// Wild swings inside the calibrated band must not be reported
	// (paper Section 2.2: stability is not re-checked, only range).
	d := New(testModel(), testSuite, Options{})
	feed(d, []float64{10, 20, 10, 20, 10, 20, 10, 20})
	d.Finish()
	if len(d.Violations()) != 0 {
		t.Fatal("in-band oscillation reported as a bug")
	}
}

func TestViolationAboveMax(t *testing.T) {
	d := New(testModel(), testSuite, Options{})
	feed(d, []float64{12, 15, 21.5})
	d.Finish()
	v := d.Violations()
	if len(v) != 1 {
		t.Fatalf("violations = %d, want 1", len(v))
	}
	f := v[0]
	if f.Metric != "Roots" || f.Direction != AboveMax || f.Tick != 3 || f.Value != 21.5 {
		t.Errorf("finding = %+v", f)
	}
}

func TestViolationBelowMin(t *testing.T) {
	d := New(testModel(), testSuite, Options{})
	feed(d, []float64{12, 9})
	d.Finish()
	v := d.Violations()
	if len(v) != 1 || v[0].Direction != BelowMin {
		t.Fatalf("violations = %+v", v)
	}
}

func TestRecurrencesDeduplicated(t *testing.T) {
	d := New(testModel(), testSuite, Options{})
	feed(d, []float64{12, 25, 26, 27, 9})
	d.Finish()
	v := d.Violations()
	if len(v) != 2 {
		t.Fatalf("violations = %d, want 2 (one per direction)", len(v))
	}
	if v[0].Direction != AboveMax || v[0].Recurrences != 2 {
		t.Errorf("above-max finding = %+v, want 2 recurrences", v[0])
	}
	if v[1].Direction != BelowMin || v[1].Recurrences != 0 {
		t.Errorf("below-min finding = %+v", v[1])
	}
}

// stackFor builds a tracker with the given frames.
func stackFor(fns ...event.FnID) *callstack.Tracker {
	tr := callstack.NewTracker()
	for _, f := range fns {
		tr.Enter(f)
	}
	return tr
}

func TestCallStackArmingAndCapture(t *testing.T) {
	d := New(testModel(), testSuite, Options{ApproachFrac: 0.10, PostSamples: 2})
	send := func(tick uint64, v float64, st *callstack.Tracker) {
		d.Sample(metrics.Snapshot{Tick: tick, Values: []float64{v, 0}}, st)
	}
	send(1, 15, stackFor(1))   // mid-band: not armed
	send(2, 19.5, stackFor(2)) // within 10% of max=20, rising: armed
	send(3, 19.8, stackFor(3)) // still approaching
	send(4, 21, stackFor(4))   // crossing: violation
	send(5, 22, stackFor(5))   // post-crossing context
	send(6, 22, stackFor(6))   // post-crossing context (closes window)
	d.Finish()
	v := d.Violations()
	if len(v) != 1 {
		t.Fatalf("violations = %d, want 1", len(v))
	}
	caps := v[0].Captures
	if len(caps) < 4 {
		t.Fatalf("captures = %d, want pre+crossing+post context", len(caps))
	}
	// The capture window must span before (tick 2, 3), during (4)
	// and after (5, 6) the crossing.
	ticks := map[uint64]bool{}
	for _, c := range caps {
		ticks[c.Tick] = true
	}
	for _, want := range []uint64{2, 3, 4, 5} {
		if !ticks[want] {
			t.Errorf("capture window missing tick %d (got %v)", want, ticks)
		}
	}
	if ticks[1] {
		t.Error("mid-band sample must not be captured")
	}
}

func TestDisarmClearsStaleContext(t *testing.T) {
	d := New(testModel(), testSuite, Options{ApproachFrac: 0.10, PostSamples: 1})
	send := func(tick uint64, v float64, st *callstack.Tracker) {
		d.Sample(metrics.Snapshot{Tick: tick, Values: []float64{v, 0}}, st)
	}
	send(1, 19.5, stackFor(1)) // armed near max
	send(2, 15, stackFor(2))   // retreat to mid-band: disarm, clear
	send(3, 21, stackFor(3))   // sudden violation
	d.Finish()
	v := d.Violations()
	if len(v) != 1 {
		t.Fatalf("violations = %d", len(v))
	}
	for _, c := range v[0].Captures {
		if c.Tick == 1 {
			t.Error("stale pre-disarm capture leaked into the report")
		}
	}
}

func TestExtremeStabilityPoorlyDisguised(t *testing.T) {
	// Metric pinned at its calibrated minimum the whole run: the
	// oct-DAG pattern (paper Section 4.3).
	d := New(testModel(), testSuite, Options{})
	vals := make([]float64, 50)
	for i := range vals {
		vals[i] = 10.2 // hugs min=10 within 10% of width (1.0)
	}
	feed(d, vals)
	d.Finish()
	var found *Finding
	for _, f := range d.Findings() {
		if f.Kind == ExtremeStability {
			found = f
		}
	}
	if found == nil {
		t.Fatal("pinned-at-min run did not produce ExtremeStability")
	}
	if found.Direction != BelowMin {
		t.Errorf("direction = %v, want below-min", found.Direction)
	}
}

func TestNoExtremeStabilityMidBand(t *testing.T) {
	d := New(testModel(), testSuite, Options{})
	vals := make([]float64, 50)
	for i := range vals {
		vals[i] = 15
	}
	feed(d, vals)
	d.Finish()
	for _, f := range d.Findings() {
		if f.Kind == ExtremeStability {
			t.Fatal("mid-band stable run flagged as extreme stability")
		}
	}
}

// mkReport builds a report over testSuite with the given series.
func mkReport(roots, leaves []float64) *logger.Report {
	rep := &logger.Report{
		Program: "prog",
		Input:   "in",
		Suite:   []string{metrics.Roots.String(), metrics.Leaves.String()},
	}
	for i := range roots {
		rep.Snapshots = append(rep.Snapshots, metrics.Snapshot{
			Tick:   uint64(i + 1),
			Values: []float64{roots[i], leaves[i]},
		})
	}
	return rep
}

func TestUnexpectedStabilityPathological(t *testing.T) {
	// Leaves was unstable in training; a run where it sits rigidly
	// flat is the paper's "pathological" signal.
	roots := make([]float64, 60)
	leaves := make([]float64, 60)
	for i := range roots {
		roots[i] = 15
		leaves[i] = 42
	}
	rep := mkReport(roots, leaves)
	findings := CheckReport(testModel(), rep, Options{})
	var got *Finding
	for _, f := range findings {
		if f.Kind == UnexpectedStability {
			got = f
		}
	}
	if got == nil {
		t.Fatal("flat unstable metric did not produce UnexpectedStability")
	}
	if got.Metric != "Leaves" {
		t.Errorf("metric = %s, want Leaves", got.Metric)
	}
}

func TestCheckReportOffline(t *testing.T) {
	roots := []float64{12, 14, 25, 13}
	leaves := []float64{1, 50, 3, 80} // unstable as trained
	findings := CheckReport(testModel(), mkReport(roots, leaves), Options{})
	var violations int
	for _, f := range findings {
		if f.Kind == RangeViolation {
			violations++
			if len(f.Captures) != 0 {
				t.Error("offline checking cannot have stack captures")
			}
		}
	}
	if violations != 1 {
		t.Errorf("violations = %d, want 1", violations)
	}
}

func TestDescribe(t *testing.T) {
	sym := event.NewSymtab()
	a := sym.Intern("alloc_node")
	f := &Finding{
		Kind: RangeViolation, Metric: "Roots", Direction: AboveMax,
		Tick: 7, Value: 25, Range: stats.Range{Min: 10, Max: 20},
		Recurrences: 2,
		Captures: []callstack.Capture{
			{Tick: 6, Value: 19.5, Stack: []event.FnID{a}},
		},
	}
	s := f.Describe(sym)
	for _, want := range []string{"range-violation", "Roots", "above-max", "25.00", "alloc_node", "+2 recurrences"} {
		if !strings.Contains(s, want) {
			t.Errorf("Describe missing %q in:\n%s", want, s)
		}
	}
}

func TestKindAndDirectionStrings(t *testing.T) {
	if RangeViolation.String() != "range-violation" ||
		ExtremeStability.String() != "extreme-stability" ||
		UnexpectedStability.String() != "unexpected-stability" {
		t.Error("Kind strings wrong")
	}
	if AboveMax.String() != "above-max" || BelowMin.String() != "below-min" {
		t.Error("Direction strings wrong")
	}
	if !strings.Contains(Kind(42).String(), "42") {
		t.Error("unknown Kind should embed number")
	}
}

func TestStableMetricMissingFromSuite(t *testing.T) {
	// Model knows Roots, but the run's suite lacks it: no states, no
	// panic, no findings.
	suite := metrics.NewSuite(metrics.Leaves)
	d := New(testModel(), suite, Options{})
	d.Sample(metrics.Snapshot{Tick: 1, Values: []float64{50}}, nil)
	d.Finish()
	if len(d.Findings()) != 0 {
		t.Error("suite without stable metrics produced findings")
	}
}

func TestDegenerateRangeViolation(t *testing.T) {
	mdl := testModel()
	mdl.Stable[metrics.Roots.String()] = stats.Range{Min: 15, Max: 15}
	d := New(mdl, testSuite, Options{})
	feed(d, []float64{15, 15, 16})
	d.Finish()
	if len(d.Violations()) != 1 {
		t.Fatalf("degenerate-range violation count = %d, want 1", len(d.Violations()))
	}
}

func BenchmarkDetectorSample(b *testing.B) {
	d := New(testModel(), testSuite, Options{})
	snap := metrics.Snapshot{Tick: 1, Values: []float64{15, 50}}
	st := stackFor(1, 2, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.Tick = uint64(i)
		d.Sample(snap, st)
	}
}

func TestLocallyStableEnvelopeDetection(t *testing.T) {
	// Model with a locally-stable envelope for Leaves (the
	// future-work extension): phases at 40 and 60, envelope
	// [40, 60].
	mdl := testModel()
	mdl.LocallyStable = map[string]stats.Range{
		metrics.Leaves.String(): {Min: 40, Max: 60},
	}
	mdl.Classes[metrics.Leaves.String()] = model.LocallyStable.String()
	d := New(mdl, testSuite, Options{})

	// Phase jumps inside the envelope are fine; exceeding every
	// normal phase level is a bug.
	for i, v := range []float64{40, 40, 60, 60, 40, 75} {
		d.Sample(metrics.Snapshot{Tick: uint64(i + 1), Values: []float64{15, v}}, nil)
	}
	d.Finish()
	var hit *Finding
	for _, f := range d.Violations() {
		if f.Metric == metrics.Leaves.String() {
			hit = f
		}
	}
	if hit == nil {
		t.Fatal("envelope violation not detected")
	}
	if hit.MetricClass != model.LocallyStable.String() {
		t.Errorf("MetricClass = %q", hit.MetricClass)
	}
	if hit.Value != 75 || hit.Direction != AboveMax {
		t.Errorf("finding = %+v", hit)
	}
	// The globally stable metric (Roots) stayed in band: its
	// findings must be absent.
	for _, f := range d.Violations() {
		if f.Metric == metrics.Roots.String() {
			t.Errorf("unexpected Roots violation: %+v", f)
		}
	}
}

func TestGloballyStableFindingClass(t *testing.T) {
	d := New(testModel(), testSuite, Options{})
	feed(d, []float64{12, 25})
	d.Finish()
	v := d.Violations()
	if len(v) != 1 || v[0].MetricClass != model.GloballyStable.String() {
		t.Fatalf("violations = %+v", v)
	}
}
