module heapmd

go 1.22
