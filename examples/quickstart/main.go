// Quickstart: calibrate HeapMD on a small program of your own and
// catch a planted heap bug.
//
// The "program" below maintains a registry of sensor records keyed by
// a table, each record pointing at a ring of samples. Its healthy
// heap settles into a stable degree-metric signature; the buggy
// variant forgets to unlink records before freeing them (a dangling
// reference) — exactly the class of error HeapMD's anomaly detector
// was built to notice.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"heapmd"
)

// sensorApp simulates the program: a registry table of records, each
// record [id, ringPtr], each ring a 4-sample circular chain. Every
// tick retires one record and registers a new one. In the buggy
// variant, retirement frees the record but not its ring: the ring
// leaks, still wired into the heap-graph.
func sensorApp(p *heapmd.Process, buggy bool, ticks int) {
	defer p.Enter("main")()
	const slots = 80

	registry := p.AllocWords(slots)
	newRing := func() uint64 {
		defer p.Enter("newRing")()
		var first, prev uint64
		for i := 0; i < 4; i++ {
			n := p.AllocWords(2)
			if prev != 0 {
				p.StoreField(prev, 1, n)
			} else {
				first = n
			}
			prev = n
		}
		p.StoreField(prev, 1, first) // close the ring
		return first
	}
	register := func(slot int, id uint64) {
		defer p.Enter("register")()
		rec := p.AllocWords(2)
		p.StoreField(rec, 0, id)
		p.StoreField(rec, 1, newRing())
		p.StoreField(registry, slot, rec)
	}
	retire := func(slot int) {
		defer p.Enter("retire")()
		rec := p.LoadField(registry, slot)
		if rec == 0 {
			return
		}
		ring := p.LoadField(rec, 1)
		if !buggy {
			// Free the ring first: 4 nodes.
			n := ring
			for i := 0; i < 4; i++ {
				next := p.LoadField(n, 1)
				p.Free(n)
				n = next
			}
		}
		// The bug: the ring is forgotten — its nodes stay allocated
		// and cross-linked, accumulating run after run.
		p.Free(rec)
		p.StoreField(registry, slot, 0)
	}

	for i := 0; i < slots; i++ {
		register(i, uint64(i))
	}
	rng := p.Rand()
	for t := 0; t < ticks; t++ {
		slot := rng.Intn(slots)
		retire(slot)
		register(slot, uint64(t))
	}
	for i := 0; i < slots; i++ {
		retire(i)
	}
	p.Free(registry)
}

func main() {
	// Phase 1: train on several clean runs (different seeds stand in
	// for different inputs).
	sess := heapmd.NewSession(heapmd.Options{Frequency: 8})
	for seed := int64(1); seed <= 8; seed++ {
		run := sess.NewRun("sensors", fmt.Sprintf("input-%d", seed), seed)
		sensorApp(run.Process(), false, 600)
		sess.AddTraining(run)
	}
	model, build, err := sess.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("trained: %d globally stable metrics\n", build.StableCount())
	for _, id := range model.StableIDs() {
		rng, _ := model.RangeOf(id)
		fmt.Printf("  %-9s calibrated [%.2f%%, %.2f%%]\n", id, rng.Min, rng.Max)
	}

	// Phase 2: check a clean held-out run — expect silence.
	clean := sess.NewRun("sensors", "heldout-clean", 99)
	sensorApp(clean.Process(), false, 600)
	fmt.Printf("\nclean held-out run: %d findings\n", len(heapmd.Check(model, clean.Report())))

	// Phase 3: check the buggy build — expect range violations.
	buggy := sess.NewRun("sensors", "heldout-buggy", 100)
	sensorApp(buggy.Process(), true, 600)
	findings := heapmd.Check(model, buggy.Report())
	fmt.Printf("buggy run: %d findings\n", len(findings))
	for _, f := range findings {
		fmt.Printf("  metric %s went %s at tick %d: %.2f%% outside [%.2f%%, %.2f%%]\n",
			f.Metric, f.Direction, f.Tick, f.Value, f.Range.Min, f.Range.Max)
	}
	if len(findings) == 0 {
		fmt.Println("unexpected: the planted bug was not detected")
		os.Exit(1)
	}
}
