; chains.asm: a slot table of singly linked chains with rebuild churn.
; r15 selects the build variant: non-zero takes the buggy path that
; forgets to link the previous head (a typo-style leak).
;
; Try:
;   go run ./cmd/heapmd-vm -src examples/binarydemo/testdata/chains.asm
;   go run ./cmd/heapmd-vm -src examples/binarydemo/testdata/chains.asm -flag 1
fn main
  loadi r1, 96
  alloc r10, r1
  loadi r11, 0
fill:
  call buildchain
  call storeslot
  loadi r4, 1
  add r11, r11, r4
  loadi r5, 12
  cmplt r6, r11, r5
  jnz r6, fill
  loadi r12, 0
churn:
  loadi r5, 12
  rnd r11, r5
  call loadslot
  call freechain
  call buildchain
  call storeslot
  loadi r4, 1
  add r12, r12, r4
  loadi r5, 800
  cmplt r6, r12, r5
  jnz r6, churn
  halt

fn storeslot
  loadi r7, 8
  mul r8, r11, r7
  add r8, r10, r8
  store r8, 0, r2
  ret

fn loadslot
  loadi r7, 8
  mul r8, r11, r7
  add r8, r10, r8
  load r2, r8, 0
  ret

fn buildchain
  loadi r2, 0
  loadi r9, 0
bloop:
  loadi r7, 16
  alloc r8, r7
  store r8, 0, r9
  jnz r15, skiplink
  store r8, 1, r2
skiplink:
  mov r2, r8
  loadi r7, 1
  add r9, r9, r7
  loadi r7, 6
  cmplt r6, r9, r7
  jnz r6, bloop
  ret

fn freechain
floop:
  jz r2, fdone
  load r8, r2, 1
  free r2
  mov r2, r8
  jmp floop
fdone:
  ret
