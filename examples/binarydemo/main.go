// Binarydemo: the paper's deployment model, end to end, on machine
// code.
//
// HeapMD works on x86 binaries: Vulcan rewrites input.exe so that
// allocator calls and function entries report to the execution logger
// (paper Figure 2). This demo does the same thing to a program the
// toolchain has no source for — a registry of linked chains written
// in the bundled VM's assembly:
//
//  1. assemble the "binary",
//  2. instrument it (ENTER/LEAVE hooks injected, symbol table built),
//  3. train a model over clean executions,
//  4. run the buggy build (an input-dependent code path drops chain
//     links) and catch the range violation.
//
// Run with: go run ./examples/binarydemo
package main

import (
	"fmt"
	"os"

	"heapmd/internal/detect"
	"heapmd/internal/instrument"
	"heapmd/internal/logger"
	"heapmd/internal/machine"
	"heapmd/internal/model"
)

// The input "binary": a slot table of singly linked chains with
// steady rebuild churn. Register r15 selects a build variant: when
// non-zero, the chain builder forgets to link the previous head — the
// machine-code version of the paper's programming-typo bugs.
const source = `
fn main
  loadi r1, 96         ; table: 12 slots
  alloc r10, r1
  loadi r11, 0
fill:
  call buildchain
  call storeslot
  loadi r4, 1
  add r11, r11, r4
  loadi r5, 12
  cmplt r6, r11, r5
  jnz r6, fill
  loadi r12, 0
churn:
  loadi r5, 12
  rnd r11, r5
  call loadslot
  call freechain
  call buildchain
  call storeslot
  loadi r4, 1
  add r12, r12, r4
  loadi r5, 800
  cmplt r6, r12, r5
  jnz r6, churn
  halt

fn storeslot           ; table[r11] = r2
  loadi r7, 8
  mul r8, r11, r7
  add r8, r10, r8
  store r8, 0, r2
  ret

fn loadslot            ; r2 = table[r11]
  loadi r7, 8
  mul r8, r11, r7
  add r8, r10, r8
  load r2, r8, 0
  ret

fn buildchain          ; r2 = fresh 6-node chain
  loadi r2, 0
  loadi r9, 0
bloop:
  loadi r7, 16
  alloc r8, r7
  store r8, 0, r9
  jnz r15, skiplink    ; the bug: variant build drops the link
  store r8, 1, r2
skiplink:
  mov r2, r8
  loadi r7, 1
  add r9, r9, r7
  loadi r7, 6
  cmplt r6, r9, r7
  jnz r6, bloop
  ret

fn freechain
floop:
  jz r2, fdone
  load r8, r2, 1
  free r2
  mov r2, r8
  jmp floop
fdone:
  ret
`

func main() {
	prog, err := machine.Assemble(source)
	if err != nil {
		fmt.Fprintln(os.Stderr, "assemble:", err)
		os.Exit(1)
	}
	inst, sym, err := instrument.Instrument(prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "instrument:", err)
		os.Exit(1)
	}
	fmt.Printf("instrumented %d functions; symbol table: %d names\n", len(inst.Fns), sym.Len())

	runOnce := func(seed uint64, buggyFlag uint64) *logger.Report {
		l := logger.New(logger.Options{Frequency: 8, Symtab: sym})
		l.SetRun("chains.bin", fmt.Sprintf("seed-%d", seed), 1)
		vm := machine.New(inst, sym,
			machine.WithSeed(seed),
			machine.WithSink(l),
			machine.WithReg(15, buggyFlag))
		if err := vm.Run(); err != nil {
			fmt.Fprintln(os.Stderr, "vm:", err)
			os.Exit(1)
		}
		return l.Report()
	}

	var reports []*logger.Report
	for seed := uint64(1); seed <= 8; seed++ {
		reports = append(reports, runOnce(seed, 0))
	}
	build, err := model.Build(reports, model.Defaults())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("trained on %d clean executions: %d stable metrics\n", len(reports), build.StableCount())
	for name, rng := range build.Model.Stable {
		fmt.Printf("  %-9s [%.2f%%, %.2f%%]\n", name, rng.Min, rng.Max)
	}

	clean := runOnce(91, 0)
	fmt.Printf("\nclean binary, held-out seed: %d findings\n",
		len(detect.CheckReport(build.Model, clean, detect.Options{})))

	buggy := runOnce(92, 1)
	findings := detect.CheckReport(build.Model, buggy, detect.Options{})
	fmt.Printf("buggy binary: %d findings\n", len(findings))
	for _, f := range findings {
		fmt.Printf("  %s\n", f.Describe(sym))
	}
	if len(findings) == 0 {
		fmt.Println("unexpected: bug not detected")
		os.Exit(1)
	}
}
