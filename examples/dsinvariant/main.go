// Dsinvariant: the paper's Figure 1 + Figure 10 story end to end.
//
// A doubly linked list whose insertions forget to update prev
// pointers is still pointer-correct — every next pointer works, no
// crash, no memory error — so Purify/Valgrind-style checkers see
// nothing. But interior nodes that should have indegree 2 (pred.next
// plus succ.prev) now have indegree 1, and as buggy insertions
// accumulate the percentage of indegree-1 vertices climbs out of its
// calibrated range. HeapMD reports the violation with call-stack
// context captured as the metric approached its bound.
//
// Run with: go run ./examples/dsinvariant
package main

import (
	"fmt"
	"os"

	"heapmd"
	"heapmd/internal/ds"
	"heapmd/internal/faults"
	"heapmd/internal/plot"
)

// assetApp models the code around Figure 1: an asset list (doubly
// linked) with steady insert/remove churn plus a pool of asset
// payload blobs.
func assetApp(p *heapmd.Process, iters int) {
	defer p.Enter("main")()
	assets := ds.NewDList(p, "assetList")
	for i := 0; i < 40; i++ {
		assets.PushBack(uint64(i))
	}
	pool := p.AllocWords(64)
	for i := 0; i < 64; i++ {
		blob := p.AllocWords(4)
		p.StoreField(pool, i, blob)
	}
	rng := p.Rand()
	for i := 0; i < iters; i++ {
		// The Figure 1 site: insert after the head.
		assets.InsertAfter(assets.Head(), uint64(1000+i))
		assets.Remove(assets.Tail())
		// Payload churn.
		slot := rng.Intn(64)
		p.Free(p.LoadField(pool, slot))
		p.StoreField(pool, slot, p.AllocWords(4))
	}
	violations := assets.CheckPrevInvariant()
	if violations > 0 {
		fmt.Printf("  (ground truth: %d nodes with broken prev pointers)\n", violations)
	}
	assets.FreeAll()
	for i := 0; i < 64; i++ {
		p.Free(p.LoadField(pool, i))
	}
	p.Free(pool)
}

func main() {
	// Train on clean runs.
	sess := heapmd.NewSession(heapmd.Options{Frequency: 8})
	for seed := int64(1); seed <= 8; seed++ {
		run := sess.NewRun("assets", fmt.Sprintf("in-%d", seed), seed)
		assetApp(run.Process(), 450+int(seed)*20)
		sess.AddTraining(run)
	}
	mdl, build, err := sess.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rng2, ok := mdl.RangeOf(heapmd.InDeg2)
	if !ok {
		fmt.Fprintln(os.Stderr, "Indeg=2 did not calibrate; unexpected for a dlist-heavy heap")
		os.Exit(1)
	}
	fmt.Printf("trained: %d stable metrics; Indeg=2 calibrated to [%.2f%%, %.2f%%]\n\n",
		build.StableCount(), rng2.Min, rng2.Max)

	// Run the buggy build online with a detector attached, so the
	// circular call-stack buffer captures the approach and crossing.
	det := heapmd.NewDetector(mdl)
	plan := heapmd.NewFaultPlan().EnableAlways(faults.DListNoPrev)
	run := sess.NewFaultyRun("assets", "buggy", 42, plan)
	run.Observe(det)
	assetApp(run.Process(), 500)
	det.Finish()

	if len(det.Violations()) == 0 {
		fmt.Println("no violations — unexpected")
		os.Exit(1)
	}
	f := det.Violations()[0]
	fmt.Println(f.Describe(run.Process().Sym()))

	// Plot the violated metric against its calibrated band — the
	// Figure 10 presentation.
	series := run.Report().Series(parseID(f.Metric))
	fmt.Println()
	fmt.Print(plot.Render(plot.Options{
		Title: fmt.Sprintf("%s on the buggy build", f.Metric),
		Width: 64, Height: 12,
		HLines: map[string]float64{
			"calibrated min": f.Range.Min,
			"calibrated max": f.Range.Max,
		},
	}, plot.Series{Name: f.Metric + " (%)", Values: series}))
}

func parseID(name string) heapmd.MetricID {
	for _, id := range []heapmd.MetricID{
		heapmd.Roots, heapmd.InDeg1, heapmd.InDeg2,
		heapmd.Leaves, heapmd.OutDeg1, heapmd.OutDeg2, heapmd.InEqOut,
	} {
		if id.String() == name {
			return id
		}
	}
	return heapmd.Roots
}
