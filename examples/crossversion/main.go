// Crossversion: the paper's Figure 7(B) claim in miniature — a model
// calibrated on version 1 of an application keeps working on versions
// 2 through 5, because the stable heap-graph metrics and their ranges
// persist across development versions. A fault injected into version
// 4 is caught by the version-1 model, the cross-version bug-finding
// mode the paper reports ("the anomaly detector can be used to find
// bugs ... in another version of the program").
//
// Run with: go run ./examples/crossversion
package main

import (
	"fmt"
	"os"

	"heapmd/internal/detect"
	"heapmd/internal/faults"
	"heapmd/internal/model"
	"heapmd/internal/workloads"
)

func main() {
	w, err := workloads.Get("productivity")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Calibrate on version 1 only.
	const trainN = 20
	fmt.Printf("calibrating %s v1 on %d inputs...\n", w.Name(), trainN)
	reports, err := workloads.Train(w, trainN, workloads.RunConfig{Version: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	build, err := model.Build(reports, model.Defaults())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, id := range build.Model.StableIDs() {
		rng, _ := build.Model.RangeOf(id)
		fmt.Printf("  %-9s [%.2f%%, %.2f%%]\n", id, rng.Min, rng.Max)
	}

	// Clean runs of every later version must stay in band.
	testInputs := w.Inputs(trainN + 2)[trainN:]
	fmt.Println("\nclean runs against the v1 model:")
	for v := 1; v <= workloads.Versions; v++ {
		violations := 0
		for _, in := range testInputs {
			rep, _, err := workloads.RunLogged(w, in, workloads.RunConfig{Version: v})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			for _, f := range detect.CheckReport(build.Model, rep, detect.Options{}) {
				if f.Kind == detect.RangeViolation {
					violations++
				}
			}
		}
		fmt.Printf("  version %d: %d violations\n", v, violations)
	}

	// A bug introduced in version 4 is caught by the version-1 model.
	fmt.Println("\nversion 4 with the Figure 1 bug, checked against the v1 model:")
	plan := faults.NewPlan().EnableAlways(faults.DListNoPrev)
	rep, p, err := workloads.RunLogged(w, testInputs[0], workloads.RunConfig{Version: 4, Plan: plan})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	findings := detect.CheckReport(build.Model, rep, detect.Options{})
	if len(findings) == 0 {
		fmt.Println("  not detected — unexpected")
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Printf("  %s\n", f.Describe(p.Sym()))
	}
}
