// Leakhunt: run HeapMD and the SWAT staleness detector side by side
// on the bundled web-application workload with the paper's Figure 11
// typo leak injected, reproducing the Table 1 division of labour:
//
//   - the systemic typo leak moves heap-graph metrics out of their
//     calibrated band — both tools catch it;
//   - a small reachable "cache" leak never moves a metric — only
//     staleness-based SWAT sees it.
//
// Run with: go run ./examples/leakhunt
package main

import (
	"fmt"
	"os"

	"heapmd/internal/detect"
	"heapmd/internal/event"
	"heapmd/internal/faults"
	"heapmd/internal/model"
	"heapmd/internal/swat"
	"heapmd/internal/workloads"
)

func main() {
	w, err := workloads.Get("webapp")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Calibrate on clean regression inputs.
	const trainN = 25
	fmt.Printf("training %s on %d clean inputs...\n", w.Name(), trainN)
	reports, err := workloads.Train(w, trainN, workloads.RunConfig{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	build, err := model.Build(reports, model.Defaults())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("model has %d stable metrics\n\n", build.StableCount())

	testInputs := w.Inputs(trainN + 5)[trainN:]
	scenarios := []struct {
		name string
		plan func() *faults.Plan
	}{
		{"systemic typo leak (Figure 11)",
			func() *faults.Plan { return faults.NewPlan().EnableAlways(faults.TypoLeak) }},
		{"small reachable cache leak",
			func() *faults.Plan {
				return faults.NewPlan().Enable(faults.ReachableLeak, faults.Config{MaxTriggers: 6})
			}},
	}

	for _, sc := range scenarios {
		fmt.Printf("=== %s ===\n", sc.name)
		heapmdHits, swatHits := 0, 0
		var firstFinding, firstLeak string
		for _, in := range testInputs {
			sw := swat.New(swat.Options{MinStaleCount: 2})
			rep, p, err := workloads.RunLogged(w, in, workloads.RunConfig{
				Plan:       sc.plan(),
				ExtraSinks: []event.Sink{sw},
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if findings := detect.CheckReport(build.Model, rep, detect.Options{}); len(findings) > 0 {
				heapmdHits++
				if firstFinding == "" {
					firstFinding = findings[0].Describe(nil)
				}
			}
			if leaks := sw.Report(p.Sym()); len(leaks) > 0 {
				swatHits++
				if firstLeak == "" {
					firstLeak = fmt.Sprintf("%d stale objects (of %d live) allocated at %s",
						leaks[0].Stale, leaks[0].Live, leaks[0].SiteName)
				}
			}
		}
		fmt.Printf("HeapMD flagged %d of %d test inputs\n", heapmdHits, len(testInputs))
		if firstFinding != "" {
			fmt.Printf("  e.g. %s\n", firstFinding)
		}
		fmt.Printf("SWAT   flagged %d of %d test inputs\n", swatHits, len(testInputs))
		if firstLeak != "" {
			fmt.Printf("  e.g. %s\n", firstLeak)
		}
		fmt.Println()
	}
}
