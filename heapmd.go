// Package heapmd is a reproduction of "HeapMD: Identifying Heap-based
// Bugs using Anomaly Detection" (Chilimbi & Ganapathy, ASPLOS 2006):
// a dynamic-analysis tool that finds heap bugs by noticing when
// normally-stable degree metrics of the heap-graph leave their
// calibrated ranges.
//
// The package is a facade over the internal implementation. The
// pipeline mirrors the paper's two-phase architecture:
//
//	                ┌────────────┐   reports   ┌────────────┐
//	instrumented ──▶│ exec logger│────────────▶│ summarizer │──▶ Model
//	  program       └────────────┘  (training) └────────────┘
//	                ┌────────────┐    model    ┌────────────┐
//	instrumented ──▶│ exec logger│────────────▶│  detector  │──▶ findings
//	  program       └────────────┘  (checking) └────────────┘
//
// A minimal training-and-checking session:
//
//	sess := heapmd.NewSession(heapmd.Options{})
//	for _, input := range trainingInputs {
//		run := sess.NewRun("myprog", input)
//		execute(run.Process()) // your program, against run.Process()
//		sess.AddTraining(run)
//	}
//	model, summary, err := sess.Build()
//	...
//	run := sess.NewRun("myprog", testInput)
//	execute(run.Process())
//	findings := heapmd.Check(model, run.Report())
//
// Programs execute against a simulated heap (heapmd.Process), which
// plays the role of the paper's Vulcan-instrumented x86 binary: every
// allocation, free, pointer write and function entry is observed by
// the execution logger.
package heapmd

import (
	"io"

	"heapmd/internal/detect"
	"heapmd/internal/event"
	"heapmd/internal/faults"
	"heapmd/internal/health"
	"heapmd/internal/heapgraph"
	"heapmd/internal/logger"
	"heapmd/internal/metrics"
	"heapmd/internal/model"
	"heapmd/internal/prog"
	"heapmd/internal/sched"
	"heapmd/internal/stats"
	"heapmd/internal/trace"
)

// Core pipeline types, re-exported from the implementation packages.
type (
	// Process is the simulated program context: a heap plus call
	// tracking whose activity is fully observable.
	Process = prog.Process

	// Report is one execution's raw metric report.
	Report = logger.Report

	// Model is the calibrated heap-behaviour model: the ranges of
	// the globally stable metrics.
	Model = model.Model

	// Thresholds are the summarizer's stability thresholds.
	Thresholds = model.Thresholds

	// BuildResult couples a Model with per-metric classification
	// evidence.
	BuildResult = model.BuildResult

	// Finding is one anomaly-detector report.
	Finding = detect.Finding

	// Detector is the online execution checker.
	Detector = detect.Detector

	// FaultPlan configures fault injection for the bundled
	// workloads and data structures.
	FaultPlan = faults.Plan

	// MetricID identifies one heap-graph metric.
	MetricID = metrics.ID

	// Range is a calibrated [min, max] interval.
	Range = stats.Range

	// Event is one instrumentation record.
	Event = event.Event

	// Symtab resolves function IDs in findings and traces.
	Symtab = event.Symtab

	// HealthCounters tallies instrumentation the logger observed but
	// could not interpret (double frees, wild stores, ...); carried
	// in every Report and checked by the detector.
	HealthCounters = health.Counters

	// SalvageInfo describes what trace salvage recovered from a
	// damaged trace.
	SalvageInfo = trace.SalvageInfo

	// TraceStats is the storage accounting replay gathers: format
	// version, bytes per event, compression ratio.
	TraceStats = trace.Stats

	// Pipeline is the concurrent monitoring pipeline: a multi-
	// producer/single-consumer batched event channel in front of the
	// execution logger, with configurable backpressure.
	Pipeline = logger.Pipeline

	// PipelineProducer is one goroutine's batching front-end to a
	// Pipeline; it implements the event sink interface.
	PipelineProducer = logger.Producer

	// PipelineOptions configures batching, queue depth and the
	// backpressure policy of a Pipeline.
	PipelineOptions = logger.PipelineOptions

	// IngestStats are the speculative ingest pipeline's counters:
	// worker count, speculation hits/fallbacks and stall breakdown.
	IngestStats = logger.IngestStats

	// ConnectivityMode selects how a component extension metric
	// (Components via Options.Connectivity, SCCs via Options.SCC)
	// obtains its count: snapshot walks, an incremental tracker, or
	// both with a divergence check.
	ConnectivityMode = heapgraph.ConnectivityMode
)

// Connectivity modes for Options.Connectivity and
// ReplayOptions.Connectivity.
const (
	// ConnectivitySnapshot recomputes components with a
	// generation-memoized full graph walk (default).
	ConnectivitySnapshot = heapgraph.ConnectivitySnapshot
	// ConnectivityIncremental maintains the component count under
	// mutation, costing metric points by churn instead of heap size.
	ConnectivityIncremental = heapgraph.ConnectivityIncremental
	// ConnectivityVerify runs both paths and panics on divergence; a
	// differential-oracle mode for tests and CI.
	ConnectivityVerify = heapgraph.ConnectivityVerify
)

// ParseConnectivity resolves a -connectivity flag value
// ("snapshot", "incremental" or "verify").
func ParseConnectivity(s string) (ConnectivityMode, error) {
	return heapgraph.ParseConnectivity(s)
}

// ParseSCC resolves a -scc flag value (same spellings as
// ParseConnectivity).
func ParseSCC(s string) (ConnectivityMode, error) {
	return heapgraph.ParseSCC(s)
}

// Backpressure policies for PipelineOptions.Policy.
const (
	// BlockWhenFull stalls producers until the consumer catches up;
	// no events are lost (default).
	BlockWhenFull = logger.Block
	// DropWhenFull sheds batches under overload and tallies the loss
	// in the report's health counters (DroppedEvents).
	DropWhenFull = logger.Drop
)

// SimulationFrequency is the default sampling frequency for simulated
// runs and trace replay; see logger.SimulationFrequency for why it
// differs from the paper's frq = 1/100,000.
const SimulationFrequency = logger.SimulationFrequency

// Trace format versions for TraceOptions.Version. Replay auto-detects
// the version from the header, so these matter only when recording.
const (
	// TraceFormatV2 is the framed fixed-width format: CRC32-protected
	// frames of 37-byte records.
	TraceFormatV2 = trace.Version
	// TraceFormatV3 is the columnar delta-encoded format: same frame
	// envelope, several times smaller on real event streams, with
	// optional per-frame compression. The default for new recordings.
	TraceFormatV3 = trace.VersionV3
)

// The paper's seven degree-based metrics.
const (
	Roots   = metrics.Roots
	InDeg1  = metrics.InDeg1
	InDeg2  = metrics.InDeg2
	Leaves  = metrics.Leaves
	OutDeg1 = metrics.OutDeg1
	OutDeg2 = metrics.OutDeg2
	InEqOut = metrics.InEqOut
)

// DefaultThresholds returns the paper's stability thresholds: average
// change within ±1%, standard deviation of change below 5, 10%
// startup/shutdown trim, and the 40%-of-inputs rule.
func DefaultThresholds() Thresholds { return model.Defaults() }

// Options configures a Session.
type Options struct {
	// Frequency samples metrics once every Frequency function
	// entries; 0 means a simulation-appropriate default.
	Frequency uint64
	// Thresholds override the paper defaults when non-zero.
	Thresholds Thresholds
	// FieldGranularity builds the heap-graph with one vertex per
	// word instead of per object (paper Figure 3 ablation).
	FieldGranularity bool
	// MetricWorkers > 0 computes the expensive extension metrics
	// (WCC/SCC) on that many worker goroutines off the ingestion
	// path; see logger.Options.MetricWorkers. Only meaningful with a
	// suite that includes those metrics.
	MetricWorkers int
	// Connectivity selects how the Components metric obtains the
	// weak component count; see logger.Options.Connectivity. The zero
	// value is the snapshot walk.
	Connectivity ConnectivityMode
	// SCC selects the same for the SCCs metric's strong component
	// count; see logger.Options.SCC. The zero value is the snapshot
	// walk.
	SCC ConnectivityMode
	// RebuildThreshold is the incremental trackers' dirty budget
	// between amortized rebuilds (shared by the WCC and SCC
	// trackers); zero selects the default. Ignored in snapshot modes.
	RebuildThreshold int
	// IngestWorkers >= 2 puts the pipeline-parallel ingestion stage
	// (one strictly in-order mutator plus IngestWorkers-1 speculative
	// address pre-resolvers, see logger.Ingest) between each run's
	// process and its logger. Reports are byte-identical at any
	// setting; 0 or 1 keeps the direct serial path. Run.Report closes
	// the stage. Use sched.ParseIngestWorkers to resolve a flag value.
	IngestWorkers int
}

// Session manages model construction across training runs.
type Session struct {
	opts    Options
	reports []*Report
}

// NewSession creates an empty training session.
func NewSession(opts Options) *Session { return &Session{opts: opts} }

// Run couples a Process with the execution logger observing it.
type Run struct {
	process *Process
	log     *logger.Logger
	ingest  *logger.Ingest // non-nil when Options.IngestWorkers >= 2
}

// NewRun creates an instrumented process for one execution of the
// named program on the named input. seed drives the process RNG.
func (s *Session) NewRun(program, input string, seed int64) *Run {
	return s.newRun(program, input, seed, nil)
}

// NewFaultyRun is NewRun with a fault-injection plan, for testing the
// detector against known bugs.
func (s *Session) NewFaultyRun(program, input string, seed int64, plan *FaultPlan) *Run {
	return s.newRun(program, input, seed, plan)
}

func (s *Session) newRun(program, input string, seed int64, plan *FaultPlan) *Run {
	p := prog.NewProcess(prog.Options{Seed: seed, Plan: plan})
	gran := logger.ObjectGranularity
	if s.opts.FieldGranularity {
		gran = logger.FieldGranularity
	}
	freq := s.opts.Frequency
	if freq == 0 {
		freq = logger.SimulationFrequency
	}
	l := logger.New(logger.Options{
		Frequency:        freq,
		Granularity:      gran,
		MetricWorkers:    s.opts.MetricWorkers,
		Connectivity:     s.opts.Connectivity,
		SCC:              s.opts.SCC,
		RebuildThreshold: s.opts.RebuildThreshold,
	})
	l.SetRun(program, input, 1)
	r := &Run{process: p, log: l}
	if s.opts.IngestWorkers >= 2 {
		// The executing goroutine is the ingest stage's single
		// producer; Report closes the stage before finalizing.
		r.ingest = logger.NewIngest(l, logger.IngestOptions{Workers: s.opts.IngestWorkers})
		p.Subscribe(r.ingest)
	} else {
		p.Subscribe(l)
	}
	return r
}

// Pipeline puts a concurrent ingestion pipeline in front of a run's
// logger: hand each producing goroutine its own PipelineProducer (an
// event sink), close every producer, then Close the pipeline before
// calling Report. The run's own simulated process remains subscribed
// directly; the pipeline is for additional concurrent event sources
// (replayed traces, instrumented workload threads).
func (r *Run) Pipeline(opts PipelineOptions) *Pipeline {
	return logger.NewPipeline(r.log, opts)
}

// Process returns the simulated program context to execute against.
func (r *Run) Process() *Process { return r.process }

// Observe attaches a sample observer (e.g. an online Detector) to the
// run's logger. Must be called before executing the program.
func (r *Run) Observe(d *Detector) { r.log.Observe(d) }

// Report finalizes the run's metric report. With Options.IngestWorkers
// it first flushes and closes the ingest stage, so the process must be
// done executing; further process activity after Report is an error.
func (r *Run) Report() *Report {
	if r.ingest != nil {
		r.ingest.Close()
	}
	return r.log.Report()
}

// IngestStats returns the run's speculative ingest pipeline counters
// (the zero value when Options.IngestWorkers left the serial path).
// Call after Report.
func (r *Run) IngestStats() IngestStats {
	if r.ingest == nil {
		return IngestStats{}
	}
	return r.ingest.Stats()
}

// AddTraining adds a completed run's report to the training set.
func (s *Session) AddTraining(r *Run) { s.reports = append(s.reports, r.Report()) }

// AddReport adds a previously produced report (e.g. replayed from a
// trace) to the training set.
func (s *Session) AddReport(rep *Report) { s.reports = append(s.reports, rep) }

// TrainingInput names one training execution and seeds its process.
type TrainingInput struct {
	Name string
	Seed int64
}

// TrainMany executes body once per input — each against a fresh
// instrumented Run — and adds the resulting reports to the training
// set in input order. parallel is the worker count: 0 or 1 runs
// serially, negative uses GOMAXPROCS. Because every run owns its
// process and logger, the collected reports (and the error, if any
// body fails) are identical to a serial loop at any worker count; on
// error no reports are added. body must not touch shared state without
// its own synchronization.
func (s *Session) TrainMany(program string, inputs []TrainingInput, parallel int, body func(*Run, TrainingInput) error) error {
	workers := parallel
	if workers < 0 {
		workers = sched.Workers(0)
	}
	reports, err := sched.Map(workers, len(inputs), func(i int) (*Report, error) {
		run := s.newRun(program, inputs[i].Name, inputs[i].Seed, nil)
		if err := body(run, inputs[i]); err != nil {
			return nil, err
		}
		return run.Report(), nil
	})
	if err != nil {
		return err
	}
	s.reports = append(s.reports, reports...)
	return nil
}

// Build runs the metric summarizer over the training reports and
// returns the model with its classification evidence. Each zero
// threshold field is defaulted individually, so a caller overriding
// only (say) TrimFrac or MinStableFraction keeps the paper defaults
// for everything else instead of having the overrides silently
// replaced wholesale.
func (s *Session) Build() (*Model, *BuildResult, error) {
	res, err := model.Build(s.reports, fillThresholds(s.opts.Thresholds))
	if err != nil {
		return nil, nil, err
	}
	return res.Model, res, nil
}

// fillThresholds replaces each zero field of th with the paper
// default for that field, preserving the fields the caller did set.
// Zero is treated as "unset" throughout (a MaxAvgChange of 0 would
// classify every metric unstable, so no meaningful configuration is
// lost).
func fillThresholds(th Thresholds) Thresholds {
	def := model.Defaults()
	if th.MaxAvgChange == 0 {
		th.MaxAvgChange = def.MaxAvgChange
	}
	if th.MaxStdDev == 0 {
		th.MaxStdDev = def.MaxStdDev
	}
	if th.TrimFrac == 0 {
		th.TrimFrac = def.TrimFrac
	}
	if th.MinStableFraction == 0 {
		th.MinStableFraction = def.MinStableFraction
	}
	if th.MinSamples == 0 {
		th.MinSamples = def.MinSamples
	}
	if th.GuardFrac == 0 {
		th.GuardFrac = def.GuardFrac
	}
	return th
}

// Check performs offline checking of a report against a model and
// returns the findings — the paper's post-mortem usage mode.
func Check(m *Model, rep *Report) []*Finding {
	return detect.CheckReport(m, rep, detect.Options{})
}

// NewDetector builds an online detector for the model; attach it to a
// Run with Observe before executing, then call Finish after. The
// detector skips the startup window the model's summarizer also
// trimmed.
func NewDetector(m *Model) *Detector {
	return detect.New(m, metrics.DefaultSuite(), detect.Options{SkipStart: m.SkipStartSamples()})
}

// SaveModel serializes a model as JSON.
func SaveModel(m *Model, w io.Writer) error { return m.Save(w) }

// LoadModel deserializes a model written by SaveModel.
func LoadModel(r io.Reader) (*Model, error) { return model.Load(r) }

// DefaultReadAhead reports whether replay read-ahead (decoding the
// next trace frame on a dedicated goroutine) is expected to pay off
// on this machine; see trace.DefaultReadAhead for the heuristic.
//
// Deprecated: read-ahead is the DecodeWorkers=1 case of the decode
// pipeline; use DefaultDecodeWorkers.
func DefaultReadAhead() bool { return trace.DefaultReadAhead() }

// DefaultDecodeWorkers returns the decode-worker count replay should
// use on this machine: all cores on a multi-core machine, 0
// (synchronous) on a single core; see trace.DefaultDecodeWorkers.
func DefaultDecodeWorkers() int { return trace.DefaultDecodeWorkers() }

// TraceOptions configure RecordTraceWith.
type TraceOptions struct {
	// Version selects the trace format (TraceFormatV2 or
	// TraceFormatV3). Zero means TraceFormatV3.
	Version uint32
	// Compress flate-compresses v3 event frames when that makes them
	// smaller; replay output is identical. Only valid with v3.
	Compress bool
	// Workers encodes (and, with Compress, flate-compresses) sealed
	// v3 frames on a pool of that many goroutines instead of the
	// emitting goroutine, with a single ordered writer performing the
	// I/O. The trace bytes are identical at any worker count. Zero
	// means synchronous. Only valid with v3.
	Workers int
}

// RecordTrace attaches a trace writer to a run so its event stream
// can be replayed later (post-mortem analysis). The writer is handed
// the run's symbol table up front, so the framed formats checkpoint
// it periodically and a run that crashes before the returned close
// function runs still leaves a salvageable, symbolized trace. Call
// the close function after execution for a cleanly-terminated trace.
// The trace is written in the v2 format for compatibility; use
// RecordTraceWith for the smaller v3 format.
func RecordTrace(r *Run, w io.Writer) (func() error, error) {
	return RecordTraceWith(r, w, TraceOptions{Version: TraceFormatV2})
}

// RecordTraceWith is RecordTrace with format control; the zero
// options record columnar v3, uncompressed.
func RecordTraceWith(r *Run, w io.Writer, opts TraceOptions) (func() error, error) {
	tw, err := trace.NewWriterWith(w, trace.WriterOptions{Version: opts.Version, Compress: opts.Compress, Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	tw.SetSymtab(r.process.Sym())
	r.process.Subscribe(tw)
	return func() error { return tw.Close(r.process.Sym()) }, nil
}

// ReplayOptions configures trace ingestion.
type ReplayOptions struct {
	// Frequency samples metrics every Frequency-th function entry;
	// it must match the recording session's frequency for comparable
	// reports. 0 means SimulationFrequency, the session default.
	Frequency uint64
	// Salvage recovers the longest valid prefix of a truncated or
	// corrupted trace instead of failing; the loss is described in
	// the returned SalvageInfo and tallied in the report's health
	// counters.
	Salvage bool
	// Pipelined decodes the trace and applies it to the heap image on
	// separate goroutines (decode feeds a Pipeline producer), so CRC
	// checking and framing overlap graph mutation. The reconstructed
	// report is identical to a non-pipelined replay.
	Pipelined bool
	// MetricWorkers > 0 computes expensive extension metrics on
	// worker goroutines during replay; see Options.MetricWorkers.
	MetricWorkers int
	// Suite selects the metric suite for the replay; zero value
	// means the default seven-metric suite.
	Suite metrics.Suite
	// DecodeWorkers selects the trace decode pipeline: 0 decodes
	// synchronously, 1 CRC-checks and decodes the next frame on one
	// read-ahead goroutine, and n ≥ 2 runs a framing scanner plus n
	// decode workers with ordered delivery. The report is identical at
	// any setting; negative values force synchronous decode even when
	// ReadAhead is set. DefaultDecodeWorkers returns this machine's
	// recommended value. See trace.ReadOptions.DecodeWorkers.
	DecodeWorkers int
	// ReadAhead CRC-checks and decodes the next trace frame on a
	// dedicated goroutine while the logger consumes the current one;
	// see trace.ReadOptions. The report is identical either way.
	//
	// Deprecated: equivalent to DecodeWorkers=1, which wins when both
	// are set.
	ReadAhead bool
	// Stats, when non-nil, is filled with storage accounting for the
	// replayed trace: format version, bytes per event, compression
	// ratio.
	Stats *TraceStats
	// Connectivity selects how the Components metric obtains the
	// weak component count during replay; see Options.Connectivity.
	Connectivity ConnectivityMode
	// SCC selects the same for the SCCs metric's strong component
	// count; see Options.SCC.
	SCC ConnectivityMode
	// RebuildThreshold is the incremental trackers' dirty budget;
	// see Options.RebuildThreshold.
	RebuildThreshold int
	// IngestWorkers >= 2 applies the trace through the speculative
	// ingest stage: one strictly in-order mutator plus IngestWorkers-1
	// pre-resolvers overlapping address resolution with application
	// (see logger.Ingest). Composes with DecodeWorkers — a single
	// stream then uses decode workers, pre-resolvers and the mutator
	// concurrently. The report is byte-identical at any setting; 0 or
	// 1 keeps the serial consumer. When >= 2 it subsumes Pipelined
	// (the stage already decouples decode from application). The
	// counters land in Stats. Use sched.ParseIngestWorkers to resolve
	// a flag value.
	IngestWorkers int
}

// ReplayTrace replays a recorded trace into a fresh logger and
// returns the reconstructed report; see ReplayOptions.Frequency.
func ReplayTrace(rd io.ReadSeeker, program, input string, frequency uint64) (*Report, *Symtab, error) {
	rep, sym, _, err := ReplayTraceWith(rd, program, input, ReplayOptions{Frequency: frequency})
	return rep, sym, err
}

// ReplayTraceWith replays a recorded trace into a fresh logger with
// full control over ingestion. With Salvage set, a damaged trace
// yields the report reconstructed from its longest valid prefix plus
// a SalvageInfo describing the loss; without it, damage yields an
// error wrapping trace.ErrCorrupt.
func ReplayTraceWith(rd io.ReadSeeker, program, input string, opts ReplayOptions) (*Report, *Symtab, *SalvageInfo, error) {
	freq := opts.Frequency
	if freq == 0 {
		freq = logger.SimulationFrequency
	}
	l := logger.New(logger.Options{
		Frequency:        freq,
		Suite:            opts.Suite,
		MetricWorkers:    opts.MetricWorkers,
		Connectivity:     opts.Connectivity,
		SCC:              opts.SCC,
		RebuildThreshold: opts.RebuildThreshold,
	})
	l.SetRun(program, input, 1)
	var sink event.Sink = l
	var pipe *Pipeline
	var prod *PipelineProducer
	var ing *logger.Ingest
	if opts.IngestWorkers >= 2 {
		ing = logger.NewIngest(l, logger.IngestOptions{Workers: opts.IngestWorkers})
		sink = ing
	} else if opts.Pipelined {
		pipe = logger.NewPipeline(l, PipelineOptions{})
		prod = pipe.NewProducer()
		sink = prod
	}
	var (
		sym  *Symtab
		info *SalvageInfo
		err  error
	)
	ropts := trace.ReadOptions{DecodeWorkers: opts.DecodeWorkers, ReadAhead: opts.ReadAhead, Stats: opts.Stats}
	if opts.Salvage {
		sym, info, err = trace.SalvageWith(rd, sink, ropts)
	} else {
		var n uint64
		sym, n, err = trace.ReplayWith(rd, sink, ropts)
		info = &SalvageInfo{EventsRecovered: n}
	}
	if ing != nil {
		ing.Close()
		if opts.Stats != nil {
			st := ing.Stats()
			opts.Stats.IngestWorkers = st.Workers
			opts.Stats.SpeculationHits = st.SpeculationHits
			opts.Stats.SpeculationFallbacks = st.SpeculationFallbacks
			opts.Stats.PreResolveStalls = st.PreResolveStalls
			opts.Stats.MutatorStalls = st.MutatorStalls
		}
	}
	if pipe != nil {
		prod.Close()
		pipe.Close()
	}
	if err != nil {
		return nil, nil, nil, err
	}
	if info.Salvaged() {
		h := l.Health()
		h.SalvagedGaps++
		h.SalvagedBytes += info.BytesDropped
	}
	return l.Report(), sym, info, nil
}

// NewFaultPlan returns an empty fault-injection plan; see package
// internal/faults for the catalogue of fault names.
func NewFaultPlan() *FaultPlan { return faults.NewPlan() }
