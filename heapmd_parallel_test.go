package heapmd

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// TestTrainManyMatchesSerial pins the facade-level determinism
// contract: a parallel TrainMany fleet must build exactly the model a
// serial AddTraining loop builds.
func TestTrainManyMatchesSerial(t *testing.T) {
	var inputs []TrainingInput
	for seed := int64(1); seed <= 6; seed++ {
		inputs = append(inputs, TrainingInput{Name: fmt.Sprintf("input-%d", seed), Seed: seed})
	}

	serial := NewSession(Options{Frequency: 4})
	for _, in := range inputs {
		run := serial.NewRun("listprog", in.Name, in.Seed)
		buildListProgram(run.Process(), false, 400)
		serial.AddTraining(run)
	}
	serialModel, _, err := serial.Build()
	if err != nil {
		t.Fatal(err)
	}

	parallel := NewSession(Options{Frequency: 4})
	if err := parallel.TrainMany("listprog", inputs, 4, func(run *Run, in TrainingInput) error {
		buildListProgram(run.Process(), false, 400)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	parallelModel, _, err := parallel.Build()
	if err != nil {
		t.Fatal(err)
	}

	var sbuf, pbuf bytes.Buffer
	if err := SaveModel(serialModel, &sbuf); err != nil {
		t.Fatal(err)
	}
	if err := SaveModel(parallelModel, &pbuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sbuf.Bytes(), pbuf.Bytes()) {
		t.Errorf("parallel TrainMany built a different model\nserial:\n%s\nparallel:\n%s",
			sbuf.String(), pbuf.String())
	}
}

// TestTrainManyFirstErrorWins checks failure semantics: the error of
// the lowest-indexed failing input comes back (as a serial loop would
// report) and the session stays clean — no partial fleet lands in the
// training set.
func TestTrainManyFirstErrorWins(t *testing.T) {
	inputs := []TrainingInput{{"a", 1}, {"b", 2}, {"c", 3}, {"d", 4}}
	errB := errors.New("b failed")
	sess := NewSession(Options{Frequency: 4})
	err := sess.TrainMany("listprog", inputs, 4, func(run *Run, in TrainingInput) error {
		if in.Name == "b" || in.Name == "d" {
			return fmt.Errorf("%s failed", in.Name)
		}
		buildListProgram(run.Process(), false, 100)
		return nil
	})
	if err == nil || err.Error() != errB.Error() {
		t.Fatalf("err = %v, want %v", err, errB)
	}
	if len(sess.reports) != 0 {
		t.Fatalf("%d reports added despite fleet failure", len(sess.reports))
	}
}

// TestReplayReadAheadFacade checks the ReadAhead replay option
// reconstructs the same report as the synchronous reader.
func TestReplayReadAheadFacade(t *testing.T) {
	sess := NewSession(Options{Frequency: 4})
	run := sess.NewRun("listprog", "traced", 7)
	var buf bytes.Buffer
	closeTrace, err := RecordTrace(run, &buf)
	if err != nil {
		t.Fatal(err)
	}
	buildListProgram(run.Process(), false, 400)
	if err := closeTrace(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	syncRep, _, _, err := ReplayTraceWith(bytes.NewReader(data), "listprog", "traced", ReplayOptions{Frequency: 4})
	if err != nil {
		t.Fatal(err)
	}
	raRep, _, _, err := ReplayTraceWith(bytes.NewReader(data), "listprog", "traced", ReplayOptions{Frequency: 4, ReadAhead: true})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", syncRep.Snapshots) != fmt.Sprintf("%+v", raRep.Snapshots) {
		t.Error("read-ahead replay produced different metric snapshots")
	}
	if syncRep.Health != raRep.Health {
		t.Errorf("read-ahead replay produced different health counters: %+v vs %+v",
			syncRep.Health, raRep.Health)
	}
}

// TestParallelCodecFacade checks the PR-8 knobs end to end through
// the public API: TraceOptions.Workers records a byte-identical
// compressed trace on an encode pool, and ReplayOptions.DecodeWorkers
// reconstructs the same report as the synchronous reader, reporting
// the worker count in TraceStats.
func TestParallelCodecFacade(t *testing.T) {
	record := func(workers int) []byte {
		sess := NewSession(Options{Frequency: 4})
		run := sess.NewRun("listprog", "traced", 7)
		var buf bytes.Buffer
		closeTrace, err := RecordTraceWith(run, &buf, TraceOptions{Compress: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		buildListProgram(run.Process(), false, 400)
		if err := closeTrace(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	data := record(0)
	if parallel := record(3); !bytes.Equal(data, parallel) {
		t.Fatalf("TraceOptions{Workers: 3} recorded different bytes (%d vs %d)", len(parallel), len(data))
	}

	syncRep, _, _, err := ReplayTraceWith(bytes.NewReader(data), "listprog", "traced", ReplayOptions{Frequency: 4})
	if err != nil {
		t.Fatal(err)
	}
	var st TraceStats
	plRep, _, _, err := ReplayTraceWith(bytes.NewReader(data), "listprog", "traced",
		ReplayOptions{Frequency: 4, DecodeWorkers: 3, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	if st.DecodeWorkers != 3 {
		t.Errorf("TraceStats.DecodeWorkers = %d, want 3", st.DecodeWorkers)
	}
	if fmt.Sprintf("%+v", syncRep.Snapshots) != fmt.Sprintf("%+v", plRep.Snapshots) {
		t.Error("parallel decode produced different metric snapshots")
	}
	if syncRep.Health != plRep.Health {
		t.Errorf("parallel decode produced different health counters: %+v vs %+v",
			syncRep.Health, plRep.Health)
	}
}
