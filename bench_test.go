package heapmd

// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation, each regenerating its artifact at reduced
// (Quick) scale per iteration, plus ablation benchmarks for the
// design choices DESIGN.md calls out:
//
//   - object- vs field-granularity heap graphs (paper Figure 3),
//   - incremental degree histograms vs full recomputation,
//   - metric sampling frequency,
//   - the trace-recording overhead of post-mortem mode.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The per-figure benchmarks exist so `go test -bench` regenerates the
// whole evaluation; for paper-scale output with the printed tables use
// cmd/heapmd-experiments.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"heapmd/internal/event"
	"heapmd/internal/experiments"
	"heapmd/internal/heap"
	"heapmd/internal/heapgraph"
	"heapmd/internal/logger"
	"heapmd/internal/metrics"
	"heapmd/internal/model"
	"heapmd/internal/trace"
	"heapmd/internal/workloads"
)

var quick = experiments.Config{Quick: true}

func benchExperiment(b *testing.B, run func() error) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 regenerates the vpr metric trajectories.
func BenchmarkFigure4(b *testing.B) {
	benchExperiment(b, func() error { _, err := experiments.Figure4(quick); return err })
}

// BenchmarkFigure5 regenerates the vpr fluctuation series.
func BenchmarkFigure5(b *testing.B) {
	benchExperiment(b, func() error { _, err := experiments.Figure5(quick); return err })
}

// BenchmarkFigure6 regenerates the vpr stability statistics table.
func BenchmarkFigure6(b *testing.B) {
	benchExperiment(b, func() error { _, err := experiments.Figure6(quick); return err })
}

// BenchmarkFigure7A regenerates the stable-metrics table across all
// 13 benchmarks.
func BenchmarkFigure7A(b *testing.B) {
	benchExperiment(b, func() error { _, err := experiments.Figure7A(quick); return err })
}

// BenchmarkFigure7B regenerates the cross-version stability table.
func BenchmarkFigure7B(b *testing.B) {
	benchExperiment(b, func() error { _, err := experiments.Figure7B(quick); return err })
}

// BenchmarkFigure10 regenerates the PC Game/Action range-violation
// trace.
func BenchmarkFigure10(b *testing.B) {
	benchExperiment(b, func() error { _, err := experiments.Figure10(quick); return err })
}

// BenchmarkTable1 regenerates the SWAT-vs-HeapMD leak comparison.
func BenchmarkTable1(b *testing.B) {
	benchExperiment(b, func() error { _, err := experiments.Table1(quick); return err })
}

// BenchmarkTable2 regenerates the 40-bug census.
func BenchmarkTable2(b *testing.B) {
	benchExperiment(b, func() error { _, err := experiments.Table2(quick); return err })
}

// BenchmarkSPECInjection regenerates the Section 4.2 injected-bug
// validation.
func BenchmarkSPECInjection(b *testing.B) {
	benchExperiment(b, func() error { _, err := experiments.SPECInjection(quick); return err })
}

// BenchmarkThresholdSweep regenerates the Section 3 threshold
// resilience study.
func BenchmarkThresholdSweep(b *testing.B) {
	benchExperiment(b, func() error { _, err := experiments.ThresholdSweep(quick); return err })
}

// ---------------------------------------------------------------------------
// Ablations.

// BenchmarkGranularityAblation compares instrumentation cost at
// object vs field granularity on the same workload (paper Figure 3:
// field granularity multiplies vertex counts and makes metrics layout-
// sensitive; this measures what it costs).
func BenchmarkGranularityAblation(b *testing.B) {
	for _, gran := range []logger.Granularity{logger.ObjectGranularity, logger.FieldGranularity} {
		b.Run(gran.String(), func(b *testing.B) {
			w, err := workloads.Get("productivity")
			if err != nil {
				b.Fatal(err)
			}
			in := w.Inputs(1)[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _, err := workloads.RunLogged(w, in, workloads.RunConfig{
					Logger: logger.Options{Granularity: gran, Frequency: 16},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIncrementalVsRecompute quantifies the central data-
// structure decision: HeapMD's logger answers degree queries from
// incrementally maintained histograms in O(1); the alternative scans
// every vertex per metric computation point.
func BenchmarkIncrementalVsRecompute(b *testing.B) {
	build := func() *heapgraph.Graph {
		g := heapgraph.New()
		for i := 0; i < 50000; i++ {
			g.AddVertex(heapgraph.VertexID(i))
		}
		for i := 0; i < 50000; i++ {
			g.AddEdge(heapgraph.VertexID(i), heapgraph.VertexID((i*7+13)%50000))
		}
		return g
	}
	b.Run("incremental-histograms", func(b *testing.B) {
		g := build()
		suite := metrics.DefaultSuite()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			suite.Compute(g, uint64(i))
		}
	})
	b.Run("full-recompute", func(b *testing.B) {
		g := build()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Scan every vertex, recomputing each degree count the
			// way a histogram-less implementation would.
			var in0, in1, in2, out0, out1, out2, eq int
			g.Vertices(func(v heapgraph.VertexID) bool {
				id, od := g.InDegree(v), g.OutDegree(v)
				switch id {
				case 0:
					in0++
				case 1:
					in1++
				case 2:
					in2++
				}
				switch od {
				case 0:
					out0++
				case 1:
					out1++
				case 2:
					out2++
				}
				if id == od {
					eq++
				}
				return true
			})
			_ = in0 + in1 + in2 + out0 + out1 + out2 + eq
		}
	})
}

// BenchmarkSamplingFrequency sweeps the metric computation frequency
// (the paper's frq): the instrumentation overhead of one full run at
// each setting.
func BenchmarkSamplingFrequency(b *testing.B) {
	w, err := workloads.Get("gzip")
	if err != nil {
		b.Fatal(err)
	}
	in := w.Inputs(1)[0]
	for _, frq := range []uint64{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("frq-%d", frq), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _, err := workloads.RunLogged(w, in, workloads.RunConfig{
					Logger: logger.Options{Frequency: frq},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInstrumentationOverhead compares a run with no observers,
// with the execution logger, and with logger + trace recording — the
// paper reports a 2-3x slowdown for its instrumentation; this measures
// ours.
func BenchmarkInstrumentationOverhead(b *testing.B) {
	w, err := workloads.Get("crafty")
	if err != nil {
		b.Fatal(err)
	}
	in := w.Inputs(1)[0]
	b.Run("logger-only", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := workloads.RunLogged(w, in, workloads.RunConfig{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("logger-plus-trace", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			tw, err := trace.NewWriter(&buf)
			if err != nil {
				b.Fatal(err)
			}
			_, p, err := workloads.RunLogged(w, in, workloads.RunConfig{
				ExtraSinks: []event.Sink{tw},
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := tw.Close(p.Sym()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// eventSynth synthesizes one instrumented thread's event stream into
// sink: allocations, pointer stores, frees and function entries over a
// private address arena, with `work` rounds of arithmetic per event
// standing in for the application computation between instrumentation
// points. Deterministic per (arena, count, work), so the direct and
// pipelined benchmark variants ingest identical streams.
func eventSynth(sink event.Sink, arena uint64, count, work int) {
	base := (arena + 1) << 32
	live := make([]uint64, 0, 1024)
	acc := base | 1
	for i := 0; i < count; i++ {
		for w := 0; w < work; w++ {
			acc = acc*6364136223846793005 + 1442695040888963407
		}
		switch acc % 8 {
		case 0, 1, 2:
			addr := base + uint64(i)*64
			sink.Emit(event.Event{Type: event.Alloc, Addr: addr, Size: 32, Fn: 1})
			live = append(live, addr)
		case 3, 4:
			if len(live) >= 2 {
				src := live[(acc>>8)%uint64(len(live))]
				dst := live[(acc>>24)%uint64(len(live))]
				sink.Emit(event.Event{Type: event.Store, Addr: src + 8, Value: dst})
			}
		case 5:
			if len(live) > 0 {
				k := (acc >> 16) % uint64(len(live))
				sink.Emit(event.Event{Type: event.Free, Addr: live[k]})
				live = append(live[:k], live[k+1:]...)
			}
		default:
			sink.Emit(event.Event{Type: event.Enter, Fn: 2})
			sink.Emit(event.Event{Type: event.Leave})
		}
	}
}

// BenchmarkPipelineIngestion measures the tentpole concurrency win:
// total wall-clock to synthesize and ingest four instrumented
// threads' event streams, single-threaded against the bare Logger vs
// four concurrent producers through the Pipeline. The per-event code
// is identical in both variants — only the concurrency differs. The
// synthesis work (~2x the logger's apply cost per event) models the
// application computation between instrumentation points; with
// GOMAXPROCS >= 2 it overlaps the consumer's graph mutation and the
// pipeline variant ingests >= 2x faster, while on a single core the
// two variants measure the pipeline's framing overhead (a few
// percent) instead.
func BenchmarkPipelineIngestion(b *testing.B) {
	const producers = 4
	const perProducer = 8192
	const work = 1200

	b.Run("direct-single-threaded", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		var ingested uint64
		for i := 0; i < b.N; i++ {
			l := logger.New(logger.Options{Frequency: 1024})
			for a := 0; a < producers; a++ {
				eventSynth(l, uint64(a), perProducer, work)
			}
			ingested = l.Report().Events
			if ingested == 0 {
				b.Fatal("no events ingested")
			}
		}
		b.ReportMetric(float64(ingested)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	})
	b.Run("pipeline-4-producers", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		var ingested uint64
		for i := 0; i < b.N; i++ {
			l := logger.New(logger.Options{Frequency: 1024})
			p := logger.NewPipeline(l, logger.PipelineOptions{})
			var wg sync.WaitGroup
			for a := 0; a < producers; a++ {
				wg.Add(1)
				go func(arena int) {
					defer wg.Done()
					pr := p.NewProducer()
					defer pr.Close()
					eventSynth(pr, uint64(arena), perProducer, work)
				}(a)
			}
			wg.Wait()
			if err := p.Close(); err != nil {
				b.Fatal(err)
			}
			ingested = l.Report().Events
			if ingested == 0 {
				b.Fatal("no events ingested")
			}
		}
		b.ReportMetric(float64(ingested)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	})
}

// BenchmarkStoreHotPath isolates the per-event store path — the code
// the logger runs for every observed pointer write: two address
// resolutions (source object, target object), the slot-table update,
// and the edge retire/install pair on the heap-graph. No sampling, no
// allocation churn: what remains is pure data-structure cost.
//
//   - scatter: source and destination objects change every store, the
//     worst case for any locality cache.
//   - burst: a run of stores lands in the same source object before
//     moving on — the common real-program pattern (object
//     initialization) that the address index's last-hit cache targets.
func BenchmarkStoreHotPath(b *testing.B) {
	const n = 4096 // live objects, power of two
	setup := func() (*logger.Logger, []uint64) {
		l := logger.New(logger.Options{Frequency: 1 << 62})
		addrs := make([]uint64, n)
		for i := range addrs {
			addr := uint64(0x100_0000_0000) + uint64(i)*64
			addrs[i] = addr
			l.Emit(event.Event{Type: event.Alloc, Addr: addr, Size: 64, Fn: 1})
		}
		return l, addrs
	}
	b.Run("scatter", func(b *testing.B) {
		l, addrs := setup()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src := addrs[i&(n-1)]
			dst := addrs[(i*31+7)&(n-1)]
			l.Emit(event.Event{Type: event.Store, Addr: src + 8, Value: dst})
		}
	})
	b.Run("burst", func(b *testing.B) {
		l, addrs := setup()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Seven consecutive stores into one object's slots, then
			// advance to the next object.
			src := addrs[(i/7)&(n-1)]
			slot := uint64(i%7+1) * 8
			dst := addrs[(i*13+5)&(n-1)]
			l.Emit(event.Event{Type: event.Store, Addr: src + slot, Value: dst})
		}
	})
	// churn: the store-heavy mixed workload the acceptance numbers are
	// measured on. Each iteration is a batch of eight events — one
	// free, one re-alloc at the same address, six stores — so the
	// per-object bookkeeping (object record, slot table, vertex,
	// adjacency) is allocated and recycled continuously instead of
	// being amortized away by a one-time warmup, and allocs/op counts
	// whole batches rather than rounding a fraction down to zero.
	b.Run("churn", func(b *testing.B) {
		l, addrs := setup()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := (i * 17) & (n - 1)
			l.Emit(event.Event{Type: event.Free, Addr: addrs[k]})
			l.Emit(event.Event{Type: event.Alloc, Addr: addrs[k], Size: 64, Fn: 1})
			for j := 0; j < 6; j++ {
				src := addrs[(i*8+j)&(n-1)]
				dst := addrs[((i*8+j)*31+7)&(n-1)]
				l.Emit(event.Event{Type: event.Store, Addr: src + 8, Value: dst})
			}
		}
	})
}

// BenchmarkParallelTrain measures the run scheduler: one training
// fleet (16 parser inputs) executed serially vs on 8 workers. The
// reports are bit-identical (see TestTrainManyMatchesSerial and the
// experiments parallel oracle); only wall-clock differs. On a
// single-core host the workers=8 variant measures scheduler overhead
// instead of speedup — the ratio approaches the core count as cores
// are added, since runs share nothing.
func BenchmarkParallelTrain(b *testing.B) {
	w, err := workloads.Get("parser")
	if err != nil {
		b.Fatal(err)
	}
	const fleet = 16
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reports, err := workloads.Train(w, fleet, workloads.RunConfig{Parallel: workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(reports) != fleet {
					b.Fatalf("%d reports", len(reports))
				}
			}
			b.ReportMetric(float64(fleet)*float64(b.N)/b.Elapsed().Seconds(), "runs/sec")
		})
	}
}

// emitOnlySink hides a sink's EmitBatch so replay falls back to one
// Emit call per event — the pre-batching baseline.
type emitOnlySink struct{ s event.Sink }

func (w emitOnlySink) Emit(e event.Event) { w.s.Emit(e) }

// recordParserTraces records one parser-workload run simultaneously
// into every trace format and returns the encoded traces plus the
// event count. Function-entry dominated, like the production traces
// post-mortem mode replays; shared by the replay benchmarks and the
// v3 size-budget test.
func recordParserTraces(t testing.TB) (map[string][]byte, uint64) {
	w, err := workloads.Get("parser")
	if err != nil {
		t.Fatal(err)
	}
	formats := []struct {
		name string
		opts trace.WriterOptions
	}{
		{"v2", trace.WriterOptions{Version: trace.Version}},
		{"v3", trace.WriterOptions{Version: trace.VersionV3}},
		{"v3-flate", trace.WriterOptions{Version: trace.VersionV3, Compress: true}},
	}
	bufs := make([]bytes.Buffer, len(formats))
	writers := make([]*trace.Writer, len(formats))
	sinks := make([]event.Sink, len(formats))
	for i, f := range formats {
		tw, err := trace.NewWriterWith(&bufs[i], f.opts)
		if err != nil {
			t.Fatal(err)
		}
		writers[i] = tw
		sinks[i] = tw
	}
	_, p, err := workloads.RunLogged(w, w.Inputs(1)[0], workloads.RunConfig{
		ExtraSinks: sinks,
	})
	if err != nil {
		t.Fatal(err)
	}
	nEvents := writers[0].Events()
	out := make(map[string][]byte, len(formats))
	for i, f := range formats {
		if err := writers[i].Close(p.Sym()); err != nil {
			t.Fatal(err)
		}
		out[f.name] = bufs[i].Bytes()
	}
	return out, nEvents
}

// BenchmarkReplayThroughput measures the batched trace replay fast
// path into a real logger: per-event delivery (the old code path),
// frame-batched delivery through the batch-sink interface, and
// batched delivery with the read-ahead decoder goroutine — for the
// fixed-width v2 format and the columnar v3 format, compressed and
// not. The frame-decode loop reuses its payload and batch buffers, so
// the batched variants hold allocs/op flat regardless of trace
// length; bytes/event shows the storage density each format trades
// that throughput against.
func BenchmarkReplayThroughput(b *testing.B) {
	traces, nEvents := recordParserTraces(b)
	variants := []struct {
		name   string
		format string
		run    func(l *logger.Logger, data []byte) error
	}{
		{"per-event", "v2", func(l *logger.Logger, data []byte) error {
			_, _, err := trace.Replay(bytes.NewReader(data), emitOnlySink{l})
			return err
		}},
		{"batched", "v2", func(l *logger.Logger, data []byte) error {
			_, _, err := trace.Replay(bytes.NewReader(data), l)
			return err
		}},
		{"batched-readahead", "v2", func(l *logger.Logger, data []byte) error {
			_, _, err := trace.ReplayWith(bytes.NewReader(data), l, trace.ReadOptions{ReadAhead: true})
			return err
		}},
		{"batched-v3", "v3", func(l *logger.Logger, data []byte) error {
			_, _, err := trace.Replay(bytes.NewReader(data), l)
			return err
		}},
		{"batched-readahead-v3", "v3", func(l *logger.Logger, data []byte) error {
			_, _, err := trace.ReplayWith(bytes.NewReader(data), l, trace.ReadOptions{ReadAhead: true})
			return err
		}},
		{"batched-v3-flate", "v3-flate", func(l *logger.Logger, data []byte) error {
			_, _, err := trace.Replay(bytes.NewReader(data), l)
			return err
		}},
		// The decode pipeline at this machine's recommended worker
		// count (synchronous on a single core — these rows then match
		// the plain batched rows; ≥ 2 workers elsewhere).
		{"batched-parallel-v3", "v3", func(l *logger.Logger, data []byte) error {
			_, _, err := trace.ReplayWith(bytes.NewReader(data), l, trace.ReadOptions{DecodeWorkers: trace.DefaultDecodeWorkers()})
			return err
		}},
		{"batched-parallel-v3-flate", "v3-flate", func(l *logger.Logger, data []byte) error {
			_, _, err := trace.ReplayWith(bytes.NewReader(data), l, trace.ReadOptions{DecodeWorkers: trace.DefaultDecodeWorkers()})
			return err
		}},
	}
	for _, v := range variants {
		data := traces[v.format]
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l := logger.New(logger.Options{Frequency: 1024})
				if err := v.run(l, data); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(nEvents)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
			b.ReportMetric(float64(len(data))/float64(nEvents), "bytes/event")
		})
	}
}

// BenchmarkModelBuild measures summarizer cost at paper-ish training
// sizes.
func BenchmarkModelBuild(b *testing.B) {
	w, err := workloads.Get("parser")
	if err != nil {
		b.Fatal(err)
	}
	reports, err := workloads.Train(w, 10, workloads.RunConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Build(reports, model.Defaults()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeapSimulator measures raw simulated-heap throughput — the
// substrate every experiment stands on.
func BenchmarkHeapSimulator(b *testing.B) {
	s := heap.New()
	var addrs []uint64
	for i := 0; i < 4096; i++ {
		a, err := s.Alloc(32)
		if err != nil {
			b.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := addrs[i%4096]
		dst := addrs[(i*31+7)%4096]
		if err := s.Store(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConnectivityMetricPoint measures the cost of one Components
// metric point — a burst of heap churn followed by the component-count
// query — under the snapshot walk and the incremental union-find
// tracker. The snapshot path pays O(V+E) per point, so its cost grows
// with heap size; the incremental path is costed by the churn between
// points, so the per-point cost stays flat and the ratio is the PR's
// headline speedup.
func BenchmarkConnectivityMetricPoint(b *testing.B) {
	build := func(n int, mode heapgraph.ConnectivityMode) *heapgraph.Graph {
		g := heapgraph.New()
		g.SetConnectivity(mode, 0)
		for i := 0; i < n; i++ {
			g.AddVertex(heapgraph.VertexID(i))
		}
		// Mostly list/tree-shaped linkage with some cross edges: the
		// paper's heap shapes, and a mix of exact and conservative
		// delete classes under churn.
		for i := 1; i < n; i++ {
			g.AddEdge(heapgraph.VertexID(i/2), heapgraph.VertexID(i))
		}
		for i := 0; i < n/8; i++ {
			g.AddEdge(heapgraph.VertexID(i*7%n), heapgraph.VertexID(i*13%n))
		}
		return g
	}
	for _, n := range []int{10000, 50000, 200000} {
		for _, mode := range []heapgraph.ConnectivityMode{
			heapgraph.ConnectivitySnapshot,
			heapgraph.ConnectivityIncremental,
		} {
			b.Run(fmt.Sprintf("V=%d/%s", n, mode), func(b *testing.B) {
				g := build(n, mode)
				g.ConnectedComponentCount() // settle the initial build
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// ~64 graph operations of churn per metric point:
					// allocate a small linked run, free an old one.
					base := heapgraph.VertexID(n + (i%1024)*16)
					for j := 0; j < 16; j++ {
						g.AddVertex(base + heapgraph.VertexID(j))
						if j > 0 {
							g.AddEdge(base+heapgraph.VertexID(j-1), base+heapgraph.VertexID(j))
						}
					}
					old := heapgraph.VertexID(n + ((i+512)%1024)*16)
					for j := 15; j >= 0; j-- {
						g.RemoveVertex(old + heapgraph.VertexID(j))
					}
					g.ConnectedComponentCount()
				}
			})
		}
	}
}

// BenchmarkSCCMetricPoint is the strong-connectivity sibling of
// BenchmarkConnectivityMetricPoint: one SCCs metric point — a burst of
// heap churn followed by the strong component count query — under the
// snapshot Tarjan walk and the incremental SCC tracker. The churn is
// pendant-run allocation and teardown, which the tracker's exact
// singleton delete class absorbs without a rebuild, so the incremental
// per-point cost stays flat while the snapshot walk pays O(V+E).
func BenchmarkSCCMetricPoint(b *testing.B) {
	build := func(n int, mode heapgraph.ConnectivityMode) *heapgraph.Graph {
		g := heapgraph.New()
		g.SetSCC(mode, 0)
		for i := 0; i < n; i++ {
			g.AddVertex(heapgraph.VertexID(i))
		}
		// Same shape as the weak-connectivity benchmark: tree linkage
		// plus cross edges, so some inserts close cycles and exercise
		// the probe while the churn below stays in the exact classes.
		for i := 1; i < n; i++ {
			g.AddEdge(heapgraph.VertexID(i/2), heapgraph.VertexID(i))
		}
		for i := 0; i < n/8; i++ {
			g.AddEdge(heapgraph.VertexID(i*7%n), heapgraph.VertexID(i*13%n))
		}
		return g
	}
	for _, n := range []int{10000, 50000, 200000} {
		for _, mode := range []heapgraph.ConnectivityMode{
			heapgraph.ConnectivitySnapshot,
			heapgraph.ConnectivityIncremental,
		} {
			b.Run(fmt.Sprintf("V=%d/%s", n, mode), func(b *testing.B) {
				g := build(n, mode)
				g.StronglyConnectedComponentCount() // settle the initial build
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					base := heapgraph.VertexID(n + (i%1024)*16)
					for j := 0; j < 16; j++ {
						g.AddVertex(base + heapgraph.VertexID(j))
						if j > 0 {
							g.AddEdge(base+heapgraph.VertexID(j-1), base+heapgraph.VertexID(j))
						}
					}
					old := heapgraph.VertexID(n + ((i+512)%1024)*16)
					for j := 15; j >= 0; j-- {
						g.RemoveVertex(old + heapgraph.VertexID(j))
					}
					g.StronglyConnectedComponentCount()
				}
			})
		}
	}
}
