package heapmd

import (
	"bytes"
	"testing"

	"heapmd/internal/faults"
	"heapmd/internal/model"
)

func TestFillThresholdsPartialOverride(t *testing.T) {
	def := model.Defaults()
	th := fillThresholds(Thresholds{TrimFrac: 0.25, MinStableFraction: 0.9})
	if th.TrimFrac != 0.25 || th.MinStableFraction != 0.9 {
		t.Errorf("caller overrides lost: %+v", th)
	}
	if th.MaxAvgChange != def.MaxAvgChange || th.MaxStdDev != def.MaxStdDev ||
		th.MinSamples != def.MinSamples || th.GuardFrac != def.GuardFrac {
		t.Errorf("unset fields not defaulted: %+v", th)
	}
}

func TestFillThresholdsZeroValue(t *testing.T) {
	if got := fillThresholds(Thresholds{}); got != model.Defaults() {
		t.Errorf("zero thresholds = %+v, want paper defaults %+v", got, model.Defaults())
	}
}

func TestSessionBuildKeepsPartialThresholds(t *testing.T) {
	sess := NewSession(Options{Frequency: 4, Thresholds: Thresholds{TrimFrac: 0.2}})
	run := sess.NewRun("p", "i", 1)
	buildListProgram(run.Process(), false, 300)
	sess.AddTraining(run)
	mdl, _, err := sess.Build()
	if err != nil {
		t.Fatal(err)
	}
	if mdl.Thresholds.TrimFrac != 0.2 {
		t.Errorf("TrimFrac override lost: %v", mdl.Thresholds.TrimFrac)
	}
	if mdl.Thresholds.MaxAvgChange != model.Defaults().MaxAvgChange {
		t.Errorf("MaxAvgChange not defaulted: %v", mdl.Thresholds.MaxAvgChange)
	}
}

// recordListTrace records a run of buildListProgram and returns the
// trace bytes.
func recordListTrace(t *testing.T) []byte {
	t.Helper()
	sess := NewSession(Options{Frequency: 4})
	run := sess.NewRun("p", "i", 1)
	var buf bytes.Buffer
	closeTrace, err := RecordTrace(run, &buf)
	if err != nil {
		t.Fatal(err)
	}
	buildListProgram(run.Process(), false, 200)
	if err := closeTrace(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReplayTruncatedTraceSalvage(t *testing.T) {
	data := recordListTrace(t)
	cut := data[:len(data)-len(data)/3] // lose the tail, trailer included

	// Strict replay must refuse the damaged trace.
	if _, _, _, err := ReplayTraceWith(bytes.NewReader(cut), "p", "i", ReplayOptions{}); err == nil {
		t.Fatal("strict replay accepted a truncated trace")
	}

	rep, sym, info, err := ReplayTraceWith(bytes.NewReader(cut), "p", "i", ReplayOptions{Salvage: true})
	if err != nil {
		t.Fatalf("salvage failed: %v", err)
	}
	if !info.Salvaged() {
		t.Fatalf("truncated trace reported clean: %v", info)
	}
	if info.BytesDropped == 0 || !info.Truncated {
		t.Errorf("salvage info = %v", info)
	}
	if sym == nil {
		t.Fatal("salvage returned nil symtab")
	}
	if rep.Health.SalvagedGaps != 1 || rep.Health.SalvagedBytes != info.BytesDropped {
		t.Errorf("salvage not accounted in report health: %+v", rep.Health)
	}
}

func TestReplayCleanTraceHealthClean(t *testing.T) {
	data := recordListTrace(t)
	rep, _, info, err := ReplayTraceWith(bytes.NewReader(data), "p", "i", ReplayOptions{Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.Salvaged() {
		t.Errorf("clean trace reported salvaged: %v", info)
	}
	if !rep.Health.Zero() {
		t.Errorf("clean replay dirtied health: %+v", rep.Health)
	}
}

// sharedFreeProgram reproduces the paper's Figure 12 shape at the
// facade level: a circular structure shares its head with another
// list; the buggy path frees the head while the tail still points at
// it, and the subsequent write through the stale pointer lands in
// freed memory.
func sharedFreeProgram(p *Process) {
	defer p.Enter("main")()
	head := p.AllocWords(2)
	tail := p.AllocWords(2)
	p.StoreField(tail, 1, head) // tail.next = head (shared)
	stale := head
	if p.Hit(faults.SharedFree) {
		p.Free(head) // bug: head is still reachable from tail
	}
	p.StoreField(stale, 0, 7) // write through tail.next
	p.Free(tail)
	if !p.Hit(faults.SharedFree) {
		p.Free(head)
	}
}

func TestSharedFreeDanglingStoreInHealth(t *testing.T) {
	plan := NewFaultPlan().EnableAlways(faults.SharedFree)
	sess := NewSession(Options{Frequency: 4})

	buggy := sess.NewFaultyRun("p", "buggy", 1, plan)
	sharedFreeProgram(buggy.Process())
	rep := buggy.Report()
	if rep.Health.WildStores == 0 {
		t.Fatalf("dangling store did not surface as a wild store: %+v", rep.Health)
	}

	clean := sess.NewRun("p", "clean", 1)
	sharedFreeProgram(clean.Process())
	if h := clean.Report().Health; !h.Zero() {
		t.Errorf("clean run dirtied health: %+v", h)
	}
}
