package heapmd

import (
	"bytes"
	"fmt"
	"testing"
)

// recordListProgTrace records one listprog run and returns the trace
// bytes plus the report the recording session itself produced.
func recordListProgTrace(t *testing.T) ([]byte, *Report) {
	t.Helper()
	sess := NewSession(Options{Frequency: 4})
	run := sess.NewRun("listprog", "traced", 7)
	var buf bytes.Buffer
	closeTrace, err := RecordTrace(run, &buf)
	if err != nil {
		t.Fatal(err)
	}
	buildListProgram(run.Process(), false, 400)
	if err := closeTrace(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), run.Report()
}

func diffFacadeReports(t *testing.T, label string, got, want *Report) {
	t.Helper()
	if fmt.Sprintf("%+v", got.Snapshots) != fmt.Sprintf("%+v", want.Snapshots) {
		t.Errorf("%s: different metric snapshots", label)
	}
	if got.Health != want.Health {
		t.Errorf("%s: different health counters: %+v vs %+v", label, got.Health, want.Health)
	}
	if got.Events != want.Events || got.FnEntries != want.FnEntries {
		t.Errorf("%s: events/entries %d/%d vs %d/%d", label, got.Events, got.FnEntries, want.Events, want.FnEntries)
	}
}

// TestIngestReplayFacade: ReplayOptions.IngestWorkers must reconstruct
// the recording session's exact report — alone, and composed with the
// decode pipeline — while surfacing its counters in TraceStats.
func TestIngestReplayFacade(t *testing.T) {
	data, recorded := recordListProgTrace(t)

	serialRep, _, _, err := ReplayTraceWith(bytes.NewReader(data), "listprog", "traced", ReplayOptions{Frequency: 4})
	if err != nil {
		t.Fatal(err)
	}
	diffFacadeReports(t, "serial replay vs recording", serialRep, recorded)

	for _, opts := range []ReplayOptions{
		{Frequency: 4, IngestWorkers: 2},
		{Frequency: 4, IngestWorkers: 4},
		{Frequency: 4, IngestWorkers: 4, DecodeWorkers: 2}, // composed with the decode pipeline
	} {
		var st TraceStats
		opts.Stats = &st
		rep, _, _, err := ReplayTraceWith(bytes.NewReader(data), "listprog", "traced", opts)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("ingest=%d decode=%d", opts.IngestWorkers, opts.DecodeWorkers)
		diffFacadeReports(t, label, rep, serialRep)
		if st.IngestWorkers != opts.IngestWorkers {
			t.Errorf("%s: TraceStats.IngestWorkers = %d", label, st.IngestWorkers)
		}
		if st.SpeculationHits+st.SpeculationFallbacks == 0 {
			t.Errorf("%s: no stores accounted by the ingest stage", label)
		}
	}
}

// TestIngestReplayFacadeDamaged: corrupt and truncated traces must
// behave identically at every ingest setting — same error in strict
// mode, same salvaged report and SalvageInfo in salvage mode.
func TestIngestReplayFacadeDamaged(t *testing.T) {
	data, _ := recordListProgTrace(t)
	cut := data[:len(data)*2/3]
	flipped := bytes.Clone(data)
	flipped[len(flipped)/2] ^= 0x20

	for name, damaged := range map[string][]byte{"truncated": cut, "flipped": flipped} {
		_, _, _, serialErr := ReplayTraceWith(bytes.NewReader(damaged), "listprog", "traced", ReplayOptions{Frequency: 4})
		_, _, _, ingestErr := ReplayTraceWith(bytes.NewReader(damaged), "listprog", "traced", ReplayOptions{Frequency: 4, IngestWorkers: 4})
		if (serialErr == nil) != (ingestErr == nil) ||
			(serialErr != nil && serialErr.Error() != ingestErr.Error()) {
			t.Errorf("%s strict: serial err %v, ingest err %v", name, serialErr, ingestErr)
		}

		serialRep, _, serialInfo, err := ReplayTraceWith(bytes.NewReader(damaged), "listprog", "traced",
			ReplayOptions{Frequency: 4, Salvage: true})
		if err != nil {
			t.Fatalf("%s salvage serial: %v", name, err)
		}
		ingestRep, _, ingestInfo, err := ReplayTraceWith(bytes.NewReader(damaged), "listprog", "traced",
			ReplayOptions{Frequency: 4, Salvage: true, IngestWorkers: 4})
		if err != nil {
			t.Fatalf("%s salvage ingest: %v", name, err)
		}
		diffFacadeReports(t, name+" salvage", ingestRep, serialRep)
		if *serialInfo != *ingestInfo {
			t.Errorf("%s salvage info: %+v vs %+v", name, serialInfo, ingestInfo)
		}
	}
}

// TestIngestSessionFacade: Options.IngestWorkers on a live session
// must leave the report bit-identical to a serial session over the
// same program, with the stage's counters visible on the Run.
func TestIngestSessionFacade(t *testing.T) {
	runOnce := func(workers int) (*Report, IngestStats) {
		sess := NewSession(Options{Frequency: 4, IngestWorkers: workers})
		run := sess.NewRun("listprog", "live", 7)
		buildListProgram(run.Process(), false, 400)
		rep := run.Report()
		return rep, run.IngestStats()
	}
	want, zero := runOnce(0)
	if zero != (IngestStats{}) {
		t.Fatalf("serial run reported ingest stats %+v", zero)
	}
	for _, workers := range []int{2, 4} {
		got, st := runOnce(workers)
		diffFacadeReports(t, fmt.Sprintf("session ingest=%d", workers), got, want)
		if st.Workers != workers {
			t.Errorf("IngestStats.Workers = %d, want %d", st.Workers, workers)
		}
		if st.SpeculationHits+st.SpeculationFallbacks == 0 {
			t.Errorf("workers=%d: no stores accounted by the ingest stage", workers)
		}
	}
}
