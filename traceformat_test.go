package heapmd

import (
	"bytes"
	"encoding/json"
	"testing"

	"heapmd/internal/logger"
	"heapmd/internal/trace"
)

// v3BytesPerEventBudget is the CI trace-size regression gate: the
// uncompressed v3 format must encode the recorded parser workload in
// at most this many bytes per event. Measured at introduction: 11.72
// (vs v2's fixed 37-byte records plus framing; the residual is almost
// entirely the Value column of Load events, whose loaded heap words
// are high-entropy). The budget leaves headroom for event-mix drift
// without letting the encoding quietly decay toward fixed width.
const v3BytesPerEventBudget = 13.0

// TestTraceFormatEquivalence is the end-to-end cross-format oracle:
// one parser-workload run recorded simultaneously as v2, v3 and
// compressed v3 must replay — through the full logger — to
// byte-identical reports and identical symbol tables. (The trace
// package's TestCrossVersionEquivalence checks raw event sequences;
// this covers the whole replay stack the CLI uses, v1 included via
// that test since RecordTrace no longer writes it.)
func TestTraceFormatEquivalence(t *testing.T) {
	traces, nEvents := recordParserTraces(t)

	type outcome struct {
		report  []byte
		symbols int
	}
	outcomes := map[string]outcome{}
	for name, data := range traces {
		var st TraceStats
		rep, sym, info, err := ReplayTraceWith(bytes.NewReader(data), "parser", "in0",
			ReplayOptions{Frequency: 1024, Stats: &st})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if info.EventsRecovered != nEvents {
			t.Fatalf("%s: replayed %d events, recorded %d", name, info.EventsRecovered, nEvents)
		}
		if st.Events != nEvents {
			t.Errorf("%s: stats counted %d events, want %d", name, st.Events, nEvents)
		}
		js, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		outcomes[name] = outcome{report: js, symbols: sym.Len()}
	}
	base := outcomes["v2"]
	for name, o := range outcomes {
		if !bytes.Equal(o.report, base.report) {
			t.Errorf("%s: replayed report differs from v2's", name)
		}
		if o.symbols != base.symbols {
			t.Errorf("%s: %d symbols, v2 replayed %d", name, o.symbols, base.symbols)
		}
	}
}

// TestTraceV3SizeBudget is the trace-size regression gate on the
// recorded parser workload: v3 must stay at least 3x smaller than v2
// per event (the format's acceptance bar) and within the committed
// absolute budget.
func TestTraceV3SizeBudget(t *testing.T) {
	traces, nEvents := recordParserTraces(t)
	v2bpe := float64(len(traces["v2"])) / float64(nEvents)
	v3bpe := float64(len(traces["v3"])) / float64(nEvents)
	zbpe := float64(len(traces["v3-flate"])) / float64(nEvents)
	t.Logf("parser workload, %d events: v2 %.2f bytes/event, v3 %.2f, v3-flate %.2f",
		nEvents, v2bpe, v3bpe, zbpe)
	if v3bpe > v3BytesPerEventBudget {
		t.Errorf("v3 = %.2f bytes/event, budget %.2f", v3bpe, v3BytesPerEventBudget)
	}
	if v3bpe*3 > v2bpe {
		t.Errorf("v3 = %.2f bytes/event, not 3x smaller than v2's %.2f", v3bpe, v2bpe)
	}
	if zbpe > v3bpe {
		t.Errorf("v3-flate = %.2f bytes/event, larger than raw v3's %.2f", zbpe, v3bpe)
	}
}

// TestRecordTraceWithFormats checks the facade recording path: each
// format option produces a trace that replays to the recorded event
// count, and the compatibility default of RecordTrace stays v2.
func TestRecordTraceWithFormats(t *testing.T) {
	run := func(record func(r *Run, w *bytes.Buffer) (func() error, error)) ([]byte, uint64) {
		s := NewSession(Options{Frequency: 1024})
		r := s.NewRun("prog", "in", 1)
		var buf bytes.Buffer
		closeTrace, err := record(r, &buf)
		if err != nil {
			t.Fatal(err)
		}
		p := r.Process()
		var n uint64
		for i := 0; i < 5000; i++ {
			leave := p.Enter("fn")
			a := p.Alloc(64)
			p.Free(a)
			leave()
			n += 4
		}
		if err := closeTrace(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), n
	}
	check := func(name string, data []byte, n, wantVersion uint64) {
		var st TraceStats
		_, _, info, err := ReplayTraceWith(bytes.NewReader(data), "prog", "in",
			ReplayOptions{Frequency: 1024, Stats: &st})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if info.EventsRecovered < n {
			t.Errorf("%s: replayed %d events, recorded at least %d", name, info.EventsRecovered, n)
		}
		if uint64(st.Version) != wantVersion {
			t.Errorf("%s: trace is v%d, want v%d", name, st.Version, wantVersion)
		}
	}
	data, n := run(func(r *Run, w *bytes.Buffer) (func() error, error) { return RecordTrace(r, w) })
	check("RecordTrace", data, n, uint64(trace.Version))
	data, n = run(func(r *Run, w *bytes.Buffer) (func() error, error) {
		return RecordTraceWith(r, w, TraceOptions{})
	})
	check("RecordTraceWith zero", data, n, uint64(trace.VersionV3))
	data, n = run(func(r *Run, w *bytes.Buffer) (func() error, error) {
		return RecordTraceWith(r, w, TraceOptions{Version: TraceFormatV3, Compress: true})
	})
	check("RecordTraceWith compress", data, n, uint64(trace.VersionV3))
	if _, err := RecordTraceWith(nil, nil, TraceOptions{Version: TraceFormatV2, Compress: true}); err == nil {
		t.Error("compressed v2 recording accepted")
	}
}

var _ = logger.SimulationFrequency // keep import if constants above change
