package heapmd

import (
	"bytes"
	"testing"

	"heapmd/internal/faults"
)

// buildListProgram is a tiny "program": it maintains a doubly linked
// structure of nodes with forward and back pointers, churning steadily
// so degree metrics stabilize. With breakPrev set, insertions skip the
// back-pointer — the paper's Figure 1 bug.
func buildListProgram(p *Process, breakPrev bool, iters int) {
	leave := p.Enter("main")
	defer leave()

	var nodes []uint64
	push := func() {
		defer p.Enter("push")()
		n := p.AllocWords(3)
		if len(nodes) > 0 {
			prev := nodes[len(nodes)-1]
			p.StoreField(prev, 2, n) // next
			if !breakPrev {
				p.StoreField(n, 1, prev) // prev
			}
		}
		nodes = append(nodes, n)
	}
	pop := func() {
		defer p.Enter("pop")()
		if len(nodes) < 2 {
			return
		}
		last := nodes[len(nodes)-1]
		p.StoreField(nodes[len(nodes)-2], 2, 0)
		p.Free(last)
		nodes = nodes[:len(nodes)-1]
	}
	for i := 0; i < 60; i++ {
		push()
	}
	rng := p.Rand()
	for i := 0; i < iters; i++ {
		if rng.Intn(2) == 0 {
			pop()
			push()
		} else {
			push()
			pop()
		}
	}
	for len(nodes) > 1 {
		pop()
	}
	if len(nodes) == 1 {
		p.Free(nodes[0])
	}
}

func TestEndToEndTrainAndDetect(t *testing.T) {
	sess := NewSession(Options{Frequency: 4})
	for seed := int64(1); seed <= 6; seed++ {
		run := sess.NewRun("listprog", "input", seed)
		buildListProgram(run.Process(), false, 400)
		sess.AddTraining(run)
	}
	mdl, build, err := sess.Build()
	if err != nil {
		t.Fatal(err)
	}
	if build.StableCount() == 0 {
		t.Fatal("no stable metrics on a steady-state list program")
	}

	// Clean held-out run: no findings.
	clean := sess.NewRun("listprog", "clean", 99)
	buildListProgram(clean.Process(), false, 400)
	for _, f := range Check(mdl, clean.Report()) {
		t.Errorf("false positive on clean run: %v", f.Metric)
	}

	// Buggy run: missing prev pointers must violate a range.
	buggy := sess.NewRun("listprog", "buggy", 100)
	buildListProgram(buggy.Process(), true, 400)
	if len(Check(mdl, buggy.Report())) == 0 {
		t.Fatal("missing-prev bug not detected")
	}
}

func TestOnlineDetector(t *testing.T) {
	sess := NewSession(Options{Frequency: 4})
	for seed := int64(1); seed <= 5; seed++ {
		run := sess.NewRun("listprog", "input", seed)
		buildListProgram(run.Process(), false, 400)
		sess.AddTraining(run)
	}
	mdl, _, err := sess.Build()
	if err != nil {
		t.Fatal(err)
	}
	det := NewDetector(mdl)
	run := sess.NewRun("listprog", "buggy", 7)
	run.Observe(det)
	buildListProgram(run.Process(), true, 400)
	det.Finish()
	if len(det.Violations()) == 0 {
		t.Fatal("online detector missed the bug")
	}
	// Online findings should carry call-stack context.
	found := false
	for _, f := range det.Violations() {
		if len(f.Captures) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no call-stack captures on online detection")
	}
}

func TestModelSaveLoadFacade(t *testing.T) {
	sess := NewSession(Options{Frequency: 4})
	run := sess.NewRun("p", "i", 1)
	buildListProgram(run.Process(), false, 300)
	sess.AddTraining(run)
	mdl, _, err := sess.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModel(mdl, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Stable) != len(mdl.Stable) {
		t.Errorf("round trip lost metrics: %d vs %d", len(loaded.Stable), len(mdl.Stable))
	}
}

func TestTraceRoundTripFacade(t *testing.T) {
	sess := NewSession(Options{Frequency: 4})
	run := sess.NewRun("p", "i", 1)
	var buf bytes.Buffer
	closeTrace, err := RecordTrace(run, &buf)
	if err != nil {
		t.Fatal(err)
	}
	buildListProgram(run.Process(), false, 200)
	if err := closeTrace(); err != nil {
		t.Fatal(err)
	}
	live := run.Report()

	replayed, sym, err := ReplayTrace(bytes.NewReader(buf.Bytes()), "p", "i", 4)
	if err != nil {
		t.Fatal(err)
	}
	if sym.Len() == 0 {
		t.Error("symtab lost in trace")
	}
	if len(replayed.Snapshots) != len(live.Snapshots) {
		t.Fatalf("replayed %d snapshots, live %d", len(replayed.Snapshots), len(live.Snapshots))
	}
	for i := range live.Snapshots {
		for j := range live.Snapshots[i].Values {
			if live.Snapshots[i].Values[j] != replayed.Snapshots[i].Values[j] {
				t.Fatalf("metric drift at snapshot %d", i)
			}
		}
	}
}

func TestFaultPlanFacade(t *testing.T) {
	plan := NewFaultPlan().EnableAlways(faults.SmallLeak)
	sess := NewSession(Options{Frequency: 4})
	run := sess.NewFaultyRun("p", "i", 1, plan)
	if !run.Process().Hit(faults.SmallLeak) {
		t.Error("fault plan not threaded into the run's process")
	}
}
